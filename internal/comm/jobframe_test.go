package comm

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func TestJobFrameRoundTrip(t *testing.T) {
	inner := []byte{0xB8, 7, 1, 2, 3, 4}
	for _, job := range []uint32{0, 1, 255, 1 << 16, math.MaxUint32} {
		frame := AppendJobHeader(nil, job)
		frame = append(frame, inner...)
		got, body, err := DecodeJobFrame(frame)
		if err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if got != job {
			t.Fatalf("job = %d, want %d", got, job)
		}
		if !bytes.Equal(body, inner) {
			t.Fatalf("inner = %x, want %x", body, inner)
		}
	}
}

func TestJobFrameAppendsToPrefix(t *testing.T) {
	prefix := []byte{1, 2, 3}
	frame := AppendJobHeader(prefix, 42)
	if !bytes.Equal(frame[:3], prefix) {
		t.Fatalf("prefix clobbered: %x", frame[:3])
	}
	if len(frame) != 3+JobHeaderSize {
		t.Fatalf("len = %d, want %d", len(frame), 3+JobHeaderSize)
	}
}

func TestJobFrameRejectsMalformed(t *testing.T) {
	valid := AppendJobHeader(nil, 9)
	valid = append(valid, 0xB8, 3)
	// Truncations of every length below the header size fail.
	for n := 0; n < JobHeaderSize; n++ {
		if _, _, err := DecodeJobFrame(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// A bare header (empty inner frame) decodes; the inner layer rejects it.
	if _, inner, err := DecodeJobFrame(valid[:JobHeaderSize]); err != nil || len(inner) != 0 {
		t.Fatalf("bare header: inner=%x err=%v", inner, err)
	}
	// Every wrong magic — including the other frame magics on the wire — is
	// rejected, so an unwrapped serial-mode frame can never be mistaken for
	// a job envelope.
	for _, magic := range []byte{0x00, 0xB7, 0xB8, 0xC1, 0xC9, 0xCC, 0xFF} {
		bad := append([]byte{magic}, valid[1:]...)
		if _, _, err := DecodeJobFrame(bad); err == nil {
			t.Fatalf("magic 0x%02X accepted", magic)
		}
	}
}

// TestJobFrameNoCrossJobAliasing pins the isolation property the envelope
// exists for: the same inner step frame wrapped for two different jobs
// produces frames that differ in the header, and each decodes back to its
// own job — a job A frame can never be delivered as job B traffic.
func TestJobFrameNoCrossJobAliasing(t *testing.T) {
	inner := []byte{0xB8, 200, 0xDE, 0xAD}
	a := append(AppendJobHeader(nil, 1), inner...)
	b := append(AppendJobHeader(nil, 2), inner...)
	if bytes.Equal(a, b) {
		t.Fatal("frames for different jobs are identical")
	}
	ja, ia, _ := DecodeJobFrame(a)
	jb, ib, _ := DecodeJobFrame(b)
	if ja == jb {
		t.Fatal("decoded job ids collide")
	}
	if !bytes.Equal(ia, inner) || !bytes.Equal(ib, inner) {
		t.Fatal("inner frames corrupted by envelope")
	}
	// The step byte alone (PR 6 framing) cannot separate these two frames;
	// the job header is load-bearing. Strip it and the frames alias.
	if !bytes.Equal(a[JobHeaderSize:], b[JobHeaderSize:]) {
		t.Fatal("inner frames should alias without the envelope")
	}
}

func FuzzDecodeJobFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{JobFrameMagic})
	f.Add(AppendJobHeader(nil, 0))
	f.Add(append(AppendJobHeader(nil, 1), 0xB8, 0))           // job 1, step frame
	f.Add(append(AppendJobHeader(nil, 2), 0xB8, 0))           // same inner, job 2
	f.Add(append(AppendJobHeader(nil, math.MaxUint32), 0xC9)) // marker inner
	f.Add([]byte{0xB8, 0, 1, 2, 3, 4, 5})                     // unwrapped step frame
	f.Add([]byte{JobFrameMagic, 1, 2, 3})                     // truncated job id
	f.Fuzz(func(t *testing.T, frame []byte) {
		job, inner, err := DecodeJobFrame(frame)
		if err != nil {
			return
		}
		// Accepted frames must round-trip exactly: header fields consistent
		// with the bytes, inner aliasing the tail.
		if len(frame) < JobHeaderSize || frame[0] != JobFrameMagic {
			t.Fatalf("accepted malformed frame %x", frame)
		}
		if want := binary.LittleEndian.Uint32(frame[1:]); job != want {
			t.Fatalf("job = %d, want %d", job, want)
		}
		if !bytes.Equal(inner, frame[JobHeaderSize:]) {
			t.Fatalf("inner mismatch")
		}
		re := append(AppendJobHeader(nil, job), inner...)
		if !bytes.Equal(re, frame) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, frame)
		}
	})
}
