// Package comm implements GraphH's hybrid communication mode (§IV-C).
//
// After a worker processes a tile it broadcasts the tile's updated vertex
// values to all other servers. Two wire representations exist:
//
//   - dense: a bitvector marking updated targets plus the full float64 value
//     array for the tile's target range — compact bookkeeping but it "sends
//     many zeros" when few vertices changed;
//   - sparse: an explicit (local index, value) list — compact when updates
//     are rare, wasteful when they are common because of the index overhead.
//
// GraphH buffers updates densely, measures the batch's sparsity ratio (the
// fraction of unchanged vertices), and switches to the sparse encoding when
// that ratio exceeds a threshold (0.8 in the paper). The encoded body can
// additionally be compressed; snappy is the paper's default network codec.
package comm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
	"slices"
	"sync"

	"repro/internal/compress"
)

// DefaultSparsityThreshold is the paper's switch point: use the sparse
// encoding when more than 80% of the tile's targets are unchanged.
const DefaultSparsityThreshold = 0.8

// Update is one vertex update: a global vertex id and its new value.
type Update struct {
	ID    uint32
	Value float64
}

// Batch is the set of updates a worker produced from one tile.
type Batch struct {
	// TileID identifies the tile that produced the updates.
	TileID uint32
	// Lo and Hi delimit the tile's target range; every update id is inside.
	Lo, Hi uint32
	// Updates lists the changed vertices, in ascending id order.
	Updates []Update
}

// SparsityRatio returns the fraction of the batch's target range that did
// not change — the quantity compared against the threshold (§IV-C).
func (b *Batch) SparsityRatio() float64 {
	n := int(b.Hi - b.Lo)
	if n == 0 {
		return 1
	}
	return 1 - float64(len(b.Updates))/float64(n)
}

// WireMode is the chosen array representation.
type WireMode uint8

const (
	// DenseMode sends a bitvector plus the full range of values.
	DenseMode WireMode = 0
	// SparseMode sends (index, value) pairs.
	SparseMode WireMode = 1
)

// String names the wire mode for experiment output.
func (m WireMode) String() string {
	if m == DenseMode {
		return "dense"
	}
	return "sparse"
}

// ModeChoice controls encoder mode selection.
type ModeChoice int

const (
	// Auto applies the sparsity-threshold rule (the hybrid mode).
	Auto ModeChoice = iota
	// ForceDense always uses the dense encoding (ablation).
	ForceDense
	// ForceSparse always uses the sparse encoding (ablation).
	ForceSparse
)

// Options configures encoding.
type Options struct {
	// Choice selects hybrid/dense/sparse; default Auto.
	Choice ModeChoice
	// SparsityThreshold overrides the 0.8 default when positive.
	SparsityThreshold float64
	// Codec compresses the encoded body; None disables compression.
	Codec compress.Mode
}

// Encoding reports what the encoder produced, for traffic accounting.
type Encoding struct {
	Mode WireMode
	// Codec used on the body.
	Codec compress.Mode
	// RawBytes is the body size before compression, WireBytes the total
	// message size on the wire (header + compressed body).
	RawBytes  int
	WireBytes int
}

const headerSize = 1 + 1 + 4 + 4 + 4 + 4 + 4 + 4

// Header layout (little endian):
//
//	[0]   magic 0xB7
//	[1]   mode (low nibble) | codec (high nibble)
//	[2:6] tile id
//	[6:10] lo
//	[10:14] hi
//	[14:18] update count
//	[18:22] body length
//	[22:26] CRC-32 of the (possibly compressed) body — snappy's block
//	        format carries no integrity check of its own
//	[26:]  body
const magicByte = 0xB7

// bodyPool recycles the uncompressed-body scratch buffers used between
// encoding and compression (and decompression and parsing), so steady-state
// supersteps do not allocate a body per batch.
var bodyPool = sync.Pool{New: func() any { return new([]byte) }}

// Encode serializes the batch per the options. The updates must be sorted
// by id and lie within [Lo,Hi); Encode validates this.
func Encode(b *Batch, opts Options) ([]byte, Encoding, error) {
	return AppendEncode(nil, b, opts)
}

// AppendEncode appends the encoded message to dst and returns the extended
// slice. When dst has enough spare capacity the only per-call allocation is
// internal scratch, which is pooled — workers reuse one wire buffer per tile
// per superstep this way instead of allocating every broadcast.
func AppendEncode(dst []byte, b *Batch, opts Options) ([]byte, Encoding, error) {
	if err := validateBatch(b); err != nil {
		return nil, Encoding{}, err
	}
	threshold := opts.SparsityThreshold
	if threshold <= 0 {
		threshold = DefaultSparsityThreshold
	}
	mode := DenseMode
	switch opts.Choice {
	case Auto:
		if b.SparsityRatio() > threshold {
			mode = SparseMode
		}
	case ForceDense:
		mode = DenseMode
	case ForceSparse:
		mode = SparseMode
	default:
		return nil, Encoding{}, fmt.Errorf("comm: unknown mode choice %d", int(opts.Choice))
	}
	if !opts.Codec.Valid() {
		return nil, Encoding{}, fmt.Errorf("comm: invalid codec %d", int(opts.Codec))
	}

	scratch := bodyPool.Get().(*[]byte)
	var body []byte
	switch mode {
	case DenseMode:
		body = encodeDenseInto((*scratch)[:0], b)
	case SparseMode:
		body = encodeSparseInto((*scratch)[:0], b)
	}
	*scratch = body
	rawLen := len(body)

	start := len(dst)
	dst = slices.Grow(dst, headerSize+len(body))
	var hdr [headerSize]byte
	dst = append(dst, hdr[:]...)
	dst, err := opts.Codec.AppendCompress(dst, body)
	bodyPool.Put(scratch)
	if err != nil {
		return nil, Encoding{}, fmt.Errorf("comm: compressing body: %w", err)
	}

	msg := dst[start:]
	compressed := msg[headerSize:]
	msg[0] = magicByte
	msg[1] = uint8(mode) | uint8(opts.Codec)<<4
	binary.LittleEndian.PutUint32(msg[2:], b.TileID)
	binary.LittleEndian.PutUint32(msg[6:], b.Lo)
	binary.LittleEndian.PutUint32(msg[10:], b.Hi)
	binary.LittleEndian.PutUint32(msg[14:], uint32(len(b.Updates)))
	binary.LittleEndian.PutUint32(msg[18:], uint32(len(compressed)))
	binary.LittleEndian.PutUint32(msg[22:], crc32.ChecksumIEEE(compressed))

	return dst, Encoding{Mode: mode, Codec: opts.Codec, RawBytes: rawLen, WireBytes: len(msg)}, nil
}

func validateBatch(b *Batch) error {
	if b.Hi < b.Lo {
		return fmt.Errorf("comm: inverted range [%d,%d)", b.Lo, b.Hi)
	}
	prev := int64(-1)
	for _, u := range b.Updates {
		if u.ID < b.Lo || u.ID >= b.Hi {
			return fmt.Errorf("comm: update id %d outside range [%d,%d)", u.ID, b.Lo, b.Hi)
		}
		if int64(u.ID) <= prev {
			return fmt.Errorf("comm: update ids not strictly ascending at %d", u.ID)
		}
		prev = int64(u.ID)
	}
	return nil
}

// encodeDenseInto writes bitvector + full value range ("sends many zeros")
// into body's spare capacity, growing it only when a larger range than any
// previous batch comes through.
func encodeDenseInto(body []byte, b *Batch) []byte {
	n := int(b.Hi - b.Lo)
	bvLen := (n + 7) / 8
	total := bvLen + 8*n
	if cap(body) < total {
		body = make([]byte, total)
	} else {
		body = body[:total]
		clear(body)
	}
	for _, u := range b.Updates {
		local := int(u.ID - b.Lo)
		body[local/8] |= 1 << (local % 8)
		binary.LittleEndian.PutUint64(body[bvLen+8*local:], math.Float64bits(u.Value))
	}
	return body
}

// encodeSparseInto writes (local index, value) pairs into body's spare
// capacity.
func encodeSparseInto(body []byte, b *Batch) []byte {
	total := 12 * len(b.Updates)
	if cap(body) < total {
		body = make([]byte, total)
	} else {
		body = body[:total]
	}
	for i, u := range b.Updates {
		binary.LittleEndian.PutUint32(body[12*i:], u.ID-b.Lo)
		binary.LittleEndian.PutUint64(body[12*i+4:], math.Float64bits(u.Value))
	}
	return body
}

// Decode parses a message produced by Encode.
func Decode(msg []byte) (*Batch, Encoding, error) {
	b := new(Batch)
	enc, err := DecodeInto(b, msg)
	if err != nil {
		return nil, Encoding{}, err
	}
	return b, enc, nil
}

// DecodeInto parses a message produced by Encode into b, reusing b's update
// slice when its capacity suffices — the receive loop decodes every foreign
// batch of a superstep into one reused Batch this way. On error b's contents
// are unspecified. The decoded batch never aliases msg.
func DecodeInto(b *Batch, msg []byte) (Encoding, error) {
	if len(msg) < headerSize {
		return Encoding{}, fmt.Errorf("comm: message too short (%d bytes)", len(msg))
	}
	if msg[0] != magicByte {
		return Encoding{}, fmt.Errorf("comm: bad magic %#x", msg[0])
	}
	mode := WireMode(msg[1] & 0x0F)
	codec := compress.Mode(msg[1] >> 4)
	if mode != DenseMode && mode != SparseMode {
		return Encoding{}, fmt.Errorf("comm: unknown wire mode %d", mode)
	}
	if !codec.Valid() {
		return Encoding{}, fmt.Errorf("comm: unknown codec %d", int(codec))
	}
	b.TileID = binary.LittleEndian.Uint32(msg[2:])
	b.Lo = binary.LittleEndian.Uint32(msg[6:])
	b.Hi = binary.LittleEndian.Uint32(msg[10:])
	b.Updates = b.Updates[:0]
	count := binary.LittleEndian.Uint32(msg[14:])
	bodyLen := binary.LittleEndian.Uint32(msg[18:])
	if b.Hi < b.Lo {
		return Encoding{}, fmt.Errorf("comm: inverted range [%d,%d)", b.Lo, b.Hi)
	}
	if uint64(len(msg)) != uint64(headerSize)+uint64(bodyLen) {
		return Encoding{}, fmt.Errorf("comm: message length %d, header says %d", len(msg), headerSize+int(bodyLen))
	}
	if count > b.Hi-b.Lo {
		return Encoding{}, fmt.Errorf("comm: %d updates exceed range size %d", count, b.Hi-b.Lo)
	}
	wantCRC := binary.LittleEndian.Uint32(msg[22:])
	if got := crc32.ChecksumIEEE(msg[headerSize:]); got != wantCRC {
		return Encoding{}, fmt.Errorf("comm: body checksum mismatch (got %#x want %#x)", got, wantCRC)
	}
	var body []byte
	var scratch *[]byte
	if codec == compress.None {
		// The raw codec is the identity: parse straight out of the message.
		body = msg[headerSize:]
	} else {
		scratch = bodyPool.Get().(*[]byte)
		var err error
		body, err = codec.AppendDecompress((*scratch)[:0], msg[headerSize:])
		if err != nil {
			bodyPool.Put(scratch)
			return Encoding{}, fmt.Errorf("comm: decompressing body: %w", err)
		}
		*scratch = body
	}
	defer func() {
		if scratch != nil {
			bodyPool.Put(scratch)
		}
	}()

	enc := Encoding{Mode: mode, Codec: codec, RawBytes: len(body), WireBytes: len(msg)}
	n := int(b.Hi - b.Lo)
	switch mode {
	case DenseMode:
		bvLen := (n + 7) / 8
		if len(body) != bvLen+8*n {
			return Encoding{}, fmt.Errorf("comm: dense body %d bytes, want %d", len(body), bvLen+8*n)
		}
		// Grow only after the body-size check above: count comes from the
		// header, which the CRC does not cover, so it must not drive an
		// allocation until the body has bounded it.
		if cap(b.Updates) < int(count) {
			b.Updates = make([]Update, 0, count)
		}
		// Word-at-a-time bitvector scan: load 64 bits, then jump straight
		// to each set bit with TrailingZeros64, so sparse-ish dense bodies
		// cost one branch per update instead of one per target vertex.
		for base := 0; base < n; base += 64 {
			off := base / 8
			var w uint64
			if bvLen-off >= 8 {
				w = binary.LittleEndian.Uint64(body[off:])
			} else {
				for i := off; i < bvLen; i++ {
					w |= uint64(body[i]) << (8 * (i - off))
				}
			}
			// The encoder never sets bits at or beyond n, but the message
			// is untrusted input: stray high bits would index the value
			// array out of bounds.
			if rem := n - base; rem < 64 {
				w &= 1<<rem - 1
			}
			for w != 0 {
				local := base + bits.TrailingZeros64(w)
				w &= w - 1
				v := binary.LittleEndian.Uint64(body[bvLen+8*local:])
				b.Updates = append(b.Updates, Update{
					ID:    b.Lo + uint32(local),
					Value: math.Float64frombits(v),
				})
			}
		}
		if uint32(len(b.Updates)) != count {
			return Encoding{}, fmt.Errorf("comm: dense bitvector has %d updates, header says %d", len(b.Updates), count)
		}
	case SparseMode:
		if len(body) != 12*int(count) {
			return Encoding{}, fmt.Errorf("comm: sparse body %d bytes, want %d", len(body), 12*int(count))
		}
		if cap(b.Updates) < int(count) {
			b.Updates = make([]Update, count)
		}
		b.Updates = b.Updates[:count]
		for i := range b.Updates {
			local := binary.LittleEndian.Uint32(body[12*i:])
			if local >= uint32(n) {
				return Encoding{}, fmt.Errorf("comm: sparse index %d outside range size %d", local, n)
			}
			bits := binary.LittleEndian.Uint64(body[12*i+4:])
			b.Updates[i] = Update{ID: b.Lo + local, Value: math.Float64frombits(bits)}
		}
	}
	if err := validateBatch(b); err != nil {
		return Encoding{}, err
	}
	return enc, nil
}
