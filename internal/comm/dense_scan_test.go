package comm

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/compress"
)

// decodeDenseBitByBitReference is the pre-change dense-body scan, kept
// verbatim so the word-at-a-time TrailingZeros64 replacement in DecodeInto
// stays comparable on any machine (see PERF.md).
func decodeDenseBitByBitReference(b *Batch, body []byte, n, bvLen int) {
	b.Updates = b.Updates[:0]
	for local := 0; local < n; local++ {
		if body[local/8]&(1<<(local%8)) == 0 {
			continue
		}
		bits := binary.LittleEndian.Uint64(body[bvLen+8*local:])
		b.Updates = append(b.Updates, Update{
			ID:    b.Lo + uint32(local),
			Value: math.Float64frombits(bits),
		})
	}
}

// denseBody encodes a batch and returns the raw (uncompressed) dense body.
func denseBody(tb testing.TB, batch *Batch) (body []byte, n, bvLen int) {
	tb.Helper()
	msg, _, err := Encode(batch, Options{Choice: ForceDense, Codec: compress.None})
	if err != nil {
		tb.Fatal(err)
	}
	n = int(batch.Hi - batch.Lo)
	return msg[headerSize:], n, (n + 7) / 8
}

// TestDenseScanMatchesReference cross-checks the word-at-a-time scan
// against the bit-by-bit reference across fill levels and awkward range
// sizes (partial tail words, single-bit bodies, empty bodies).
func TestDenseScanMatchesReference(t *testing.T) {
	for _, size := range []int{1, 7, 63, 64, 65, 100, 1<<12 + 3} {
		for _, stride := range []int{1, 2, 7, 64, size} {
			batch := &Batch{TileID: 3, Lo: 10, Hi: 10 + uint32(size)}
			for i := 0; i < size; i += stride {
				batch.Updates = append(batch.Updates, Update{ID: 10 + uint32(i), Value: float64(i) + 0.5})
			}
			msg, _, err := Encode(batch, Options{Choice: ForceDense, Codec: compress.None})
			if err != nil {
				t.Fatal(err)
			}
			var got Batch
			if _, err := DecodeInto(&got, msg); err != nil {
				t.Fatalf("size=%d stride=%d: %v", size, stride, err)
			}
			body, n, bvLen := denseBody(t, batch)
			want := Batch{Lo: batch.Lo}
			decodeDenseBitByBitReference(&want, body, n, bvLen)
			if len(got.Updates) != len(want.Updates) {
				t.Fatalf("size=%d stride=%d: %d updates, reference %d", size, stride, len(got.Updates), len(want.Updates))
			}
			for i := range want.Updates {
				if got.Updates[i] != want.Updates[i] {
					t.Fatalf("size=%d stride=%d: update %d = %+v, reference %+v",
						size, stride, i, got.Updates[i], want.Updates[i])
				}
			}
		}
	}
}

// TestDenseScanMasksStrayTailBits feeds a hand-corrupted dense body whose
// bitvector sets a bit at/after Hi-Lo. The bit-by-bit decoder ignored such
// bits by loop bound; the word scan must mask them the same way instead of
// indexing the value array out of bounds or inventing phantom updates.
func TestDenseScanMasksStrayTailBits(t *testing.T) {
	batch := buildBatch(100, 10)
	msg, _, err := Encode(batch, Options{Choice: ForceDense, Codec: compress.None})
	if err != nil {
		t.Fatal(err)
	}
	// Set bit 101 of the 100-bit vector (byte 12, bit 5) and re-stamp the CRC.
	msg[headerSize+12] |= 1 << 5
	binary.LittleEndian.PutUint32(msg[22:], crc32.ChecksumIEEE(msg[headerSize:]))
	var dst Batch
	if _, err := DecodeInto(&dst, msg); err != nil {
		t.Fatal(err)
	}
	if len(dst.Updates) != len(batch.Updates) {
		t.Fatalf("stray tail bit changed update count: %d, want %d", len(dst.Updates), len(batch.Updates))
	}
	for i, u := range dst.Updates {
		if u != batch.Updates[i] {
			t.Fatalf("update %d = %+v, want %+v", i, u, batch.Updates[i])
		}
	}
}

// FuzzDecodeInto throws arbitrary bytes at the decoder — it must either
// reject them or produce a batch that round-trips through Encode to an
// equivalent decode (the invariants validateBatch enforces must hold).
func FuzzDecodeInto(f *testing.F) {
	for _, choice := range []ModeChoice{ForceDense, ForceSparse} {
		for _, codec := range []compress.Mode{compress.None, compress.Snappy} {
			msg, _, err := Encode(buildBatch(200, 17), Options{Choice: choice, Codec: codec})
			if err != nil {
				f.Fatal(err)
			}
			f.Add(msg)
		}
	}
	f.Add([]byte{magicByte})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b Batch
		if _, err := DecodeInto(&b, data); err != nil {
			return
		}
		reenc, _, err := Encode(&b, Options{Choice: ForceDense, Codec: compress.None})
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		var b2 Batch
		if _, err := DecodeInto(&b2, reenc); err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if b2.Lo != b.Lo || b2.Hi != b.Hi || len(b2.Updates) != len(b.Updates) {
			t.Fatalf("round trip changed batch: %+v vs %+v", b2, b)
		}
	})
}

// BenchmarkDecodeIntoDenseRaw measures the new word-at-a-time scan with no
// codec in the way; BenchmarkDecodeDenseBitByBitReference is the old loop
// over the identical body.
func BenchmarkDecodeIntoDenseRaw(b *testing.B) {
	batch := buildBatch(1<<16, 1<<14)
	msg, _, err := Encode(batch, Options{Choice: ForceDense, Codec: compress.None})
	if err != nil {
		b.Fatal(err)
	}
	var dst Batch
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInto(&dst, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeDenseBitByBitReference(b *testing.B) {
	batch := buildBatch(1<<16, 1<<14)
	body, n, bvLen := denseBody(b, batch)
	dst := Batch{Lo: batch.Lo, Updates: make([]Update, 0, 1<<14)}
	b.SetBytes(int64(len(body) + headerSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Match DecodeInto's work: integrity check plus the body scan.
		crc32.ChecksumIEEE(body)
		decodeDenseBitByBitReference(&dst, body, n, bvLen)
	}
}
