package comm

import (
	"encoding/binary"
	"fmt"
)

// Job-ID envelope (multi-tenant sessions). When a session interleaves more
// than one job over a single cluster inbox, every per-job frame — step-tagged
// update batches, recovery markers, collect batches — is prefixed with a
// five-byte envelope naming the job it belongs to:
//
//	[0xBA][job ID, uint32 LE][inner frame ...]
//
// The envelope extends the step-byte framing from the checkpointing PR one
// level up: the step byte stops a replayed frame from aliasing a live step
// *within* a job, and the job header stops job A's traffic from ever aliasing
// job B's, whatever the inner payload looks like. Serial sessions (at most
// one job in flight) never wrap frames, so the single-job wire format is
// byte-for-byte unchanged.

// JobFrameMagic is the first byte of every job-enveloped frame. It is
// distinct from every other top-level frame magic on the wire (comm raw
// 0xB7, step frames 0xB8, rebalance 0xC1..0xC3, recovery markers 0xC9).
const JobFrameMagic = 0xBA

// JobHeaderSize is the encoded envelope length: magic plus a uint32 job ID.
const JobHeaderSize = 5

// AppendJobHeader appends the job envelope header for job to dst and returns
// the extended slice. The inner frame follows immediately after.
func AppendJobHeader(dst []byte, job uint32) []byte {
	var hdr [JobHeaderSize]byte
	hdr[0] = JobFrameMagic
	binary.LittleEndian.PutUint32(hdr[1:], job)
	return append(dst, hdr[:]...)
}

// DecodeJobFrame splits a job-enveloped frame into its job ID and inner
// payload. The inner slice aliases frame; it is not copied. A frame that is
// too short or does not start with JobFrameMagic is rejected — in a
// multi-tenant session an unwrapped frame on the shared inbox is a protocol
// violation, never something to guess about.
func DecodeJobFrame(frame []byte) (job uint32, inner []byte, err error) {
	if len(frame) < JobHeaderSize {
		return 0, nil, fmt.Errorf("comm: job frame truncated: %d bytes, need at least %d", len(frame), JobHeaderSize)
	}
	if frame[0] != JobFrameMagic {
		return 0, nil, fmt.Errorf("comm: job frame magic 0x%02X, want 0x%02X", frame[0], JobFrameMagic)
	}
	return binary.LittleEndian.Uint32(frame[1:]), frame[JobHeaderSize:], nil
}
