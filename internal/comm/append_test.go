package comm

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"repro/internal/compress"
	"repro/internal/racedetect"
)

// buildBatch constructs a batch over an n-vertex range with the given number
// of evenly spaced updates.
func buildBatch(n, updates int) *Batch {
	rng := rand.New(rand.NewPCG(7, 7))
	b := &Batch{TileID: 3, Lo: 100, Hi: 100 + uint32(n)}
	if updates == 0 {
		return b
	}
	step := n / updates
	if step < 1 {
		step = 1
	}
	for i := 0; i < updates; i++ {
		b.Updates = append(b.Updates, Update{ID: b.Lo + uint32(i*step), Value: rng.Float64()})
	}
	return b
}

// TestAppendEncodeMatchesEncode checks that the append-style encoder
// produces byte-identical messages to Encode, including when appending after
// existing bytes.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, codec := range compress.Modes {
		for _, choice := range []ModeChoice{Auto, ForceDense, ForceSparse} {
			b := buildBatch(512, 37)
			opts := Options{Choice: choice, Codec: codec}
			want, wantEnc, err := Encode(b, opts)
			if err != nil {
				t.Fatal(err)
			}
			prefix := []byte("prefix-")
			got, gotEnc, err := AppendEncode(append([]byte(nil), prefix...), b, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, prefix) {
				t.Fatalf("codec %v: AppendEncode clobbered the prefix", codec)
			}
			if !bytes.Equal(got[len(prefix):], want) {
				t.Fatalf("codec %v choice %v: AppendEncode differs from Encode", codec, choice)
			}
			if gotEnc != wantEnc {
				t.Fatalf("codec %v: encoding report %+v != %+v", codec, gotEnc, wantEnc)
			}
		}
	}
}

// TestDecodeIntoReuse decodes a sequence of differently-shaped messages into
// one Batch and verifies each against the fresh-decode result.
func TestDecodeIntoReuse(t *testing.T) {
	var reused Batch
	for i, shape := range []struct{ n, updates int }{
		{1024, 900}, // dense
		{1024, 3},   // sparse, same range
		{64, 64},    // shrink
		{4096, 1},   // grow, sparse
		{16, 0},     // empty
	} {
		b := buildBatch(shape.n, shape.updates)
		msg, _, err := Encode(b, Options{Codec: compress.Snappy})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := Decode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeInto(&reused, msg); err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		if reused.TileID != want.TileID || reused.Lo != want.Lo || reused.Hi != want.Hi {
			t.Fatalf("shape %d: header mismatch %+v vs %+v", i, reused, want)
		}
		if len(reused.Updates) != len(want.Updates) {
			t.Fatalf("shape %d: %d updates, want %d", i, len(reused.Updates), len(want.Updates))
		}
		for j := range want.Updates {
			if reused.Updates[j] != want.Updates[j] {
				t.Fatalf("shape %d: update %d mismatch", i, j)
			}
		}
	}
}

// TestDecodeRejectsHugeHeaderWithoutAllocating corrupts the header's range
// and count fields — which the body CRC does not cover — to extreme values
// and checks both decode paths reject the message via the body-size checks
// instead of attempting a count-sized allocation first.
func TestDecodeRejectsHugeHeaderWithoutAllocating(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	b := buildBatch(256, 17)
	for _, codec := range []compress.Mode{compress.None, compress.Snappy} {
		for _, choice := range []ModeChoice{ForceDense, ForceSparse} {
			msg, _, err := Encode(b, Options{Choice: choice, Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			bad := append([]byte(nil), msg...)
			binary.LittleEndian.PutUint32(bad[6:], 0)           // Lo
			binary.LittleEndian.PutUint32(bad[10:], 0xFFFFFFFF) // Hi
			binary.LittleEndian.PutUint32(bad[14:], 0xFFFFFFFE) // count
			allocs := testing.AllocsPerRun(5, func() {
				if _, _, err := Decode(bad); err == nil {
					t.Fatal("huge-header message accepted")
				}
				var dst Batch
				if _, err := DecodeInto(&dst, bad); err == nil {
					t.Fatal("huge-header message accepted by DecodeInto")
				}
			})
			// The rejection path may allocate error values, but must never
			// allocate anything close to the claimed 4G-update batch.
			if allocs > 16 {
				t.Errorf("codec %v choice %v: rejection allocated %.0f objects", codec, choice, allocs)
			}
		}
	}
}

// TestAppendEncodeAllocs pins the warm wire path: encoding into a buffer
// with enough capacity must not allocate, for both wire modes, raw and
// snappy codecs.
func TestAppendEncodeAllocs(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	for _, tc := range []struct {
		name   string
		choice ModeChoice
		codec  compress.Mode
	}{
		{"dense-raw", ForceDense, compress.None},
		{"dense-snappy", ForceDense, compress.Snappy},
		{"sparse-raw", ForceSparse, compress.None},
		{"sparse-snappy", ForceSparse, compress.Snappy},
	} {
		b := buildBatch(4096, 512)
		opts := Options{Choice: tc.choice, Codec: tc.codec}
		// Warm: size the wire buffer and the pooled body scratch.
		wire, _, err := AppendEncode(nil, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			wire, _, err = AppendEncode(wire[:0], b, opts)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: AppendEncode allocates %.1f times per warm call, want 0", tc.name, allocs)
		}
	}
}

// TestDecodeIntoAllocs pins the warm receive path to zero allocations for
// the raw codec and O(1) for snappy.
func TestDecodeIntoAllocs(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	for _, tc := range []struct {
		name  string
		codec compress.Mode
		max   float64
	}{
		{"raw", compress.None, 0},
		{"snappy", compress.Snappy, 0},
	} {
		b := buildBatch(4096, 512)
		msg, _, err := Encode(b, Options{Codec: tc.codec})
		if err != nil {
			t.Fatal(err)
		}
		var dst Batch
		if _, err := DecodeInto(&dst, msg); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := DecodeInto(&dst, msg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > tc.max {
			t.Errorf("%s: DecodeInto allocates %.1f times per warm call, want ≤ %.0f", tc.name, allocs, tc.max)
		}
	}
}

func BenchmarkEncodeDenseSnappy(b *testing.B) {
	batch := buildBatch(1<<16, 1<<14)
	opts := Options{Choice: ForceDense, Codec: compress.Snappy}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(batch, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendEncodeDenseSnappy(b *testing.B) {
	batch := buildBatch(1<<16, 1<<14)
	opts := Options{Choice: ForceDense, Codec: compress.Snappy}
	var wire []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		wire, _, err = AppendEncode(wire[:0], batch, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendEncodeSparseSnappy(b *testing.B) {
	batch := buildBatch(1<<16, 1<<10)
	opts := Options{Choice: ForceSparse, Codec: compress.Snappy}
	var wire []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		wire, _, err = AppendEncode(wire[:0], batch, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeIntoDenseSnappy(b *testing.B) {
	batch := buildBatch(1<<16, 1<<14)
	msg, _, err := Encode(batch, Options{Choice: ForceDense, Codec: compress.Snappy})
	if err != nil {
		b.Fatal(err)
	}
	var dst Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInto(&dst, msg); err != nil {
			b.Fatal(err)
		}
	}
}
