// Package csr implements GraphH's tile data structure: the "enhanced CSR"
// representation of §III-B-2. A tile owns all in-edges of a contiguous
// target-vertex range and stores them as three arrays — row (per-target
// offsets), col (global source ids) and val (edge values, omitted for
// unweighted graphs) — plus a Bloom filter over its source vertices used for
// inactive-tile skipping (§III-C-4).
//
// Tiles serialize to a checksummed binary form; that is the unit persisted
// to the DFS by the pre-processing engine, fetched to local disk by compute
// servers, and held (possibly compressed) by the edge cache.
package csr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/bloom"
)

// Tile holds the in-edges of the target-vertex range [TargetLo, TargetHi).
type Tile struct {
	// ID is the tile's index in the global tile sequence; MPE assigns tile
	// i to server i mod N (§III-C-1).
	ID uint32
	// TargetLo and TargetHi delimit the half-open target-vertex range.
	TargetLo, TargetHi uint32
	// NumVertices is |V| of the whole graph; source ids are < NumVertices.
	NumVertices uint32
	// Row has TargetHi-TargetLo+1 entries; the in-edges of local target t
	// (global id TargetLo+t) occupy Col[Row[t]:Row[t+1]].
	Row []uint32
	// Col holds global source vertex ids in target-major order.
	Col []uint32
	// Val holds edge values parallel to Col; nil for unweighted graphs,
	// in which case every edge value is 1 (§III-B-2).
	Val []float32
	// Filter is the Bloom filter over the distinct source vertices in Col.
	Filter *bloom.Filter
}

// NumTargets returns the number of target vertices covered by the tile.
func (t *Tile) NumTargets() uint32 { return t.TargetHi - t.TargetLo }

// NumEdges returns the number of edges stored in the tile.
func (t *Tile) NumEdges() int { return len(t.Col) }

// Weighted reports whether the tile carries explicit edge values.
func (t *Tile) Weighted() bool { return t.Val != nil }

// InEdges returns the source ids and edge values of the in-edges of the
// global target vertex v, which must lie in [TargetLo, TargetHi). The value
// slice is nil for unweighted tiles. Returned slices alias tile storage.
func (t *Tile) InEdges(v uint32) (sources []uint32, values []float32) {
	local := v - t.TargetLo
	lo, hi := t.Row[local], t.Row[local+1]
	sources = t.Col[lo:hi]
	if t.Val != nil {
		values = t.Val[lo:hi]
	}
	return sources, values
}

// SizeBytes returns the in-memory footprint of the tile arrays, the quantity
// the edge cache budgets against (§IV-B).
func (t *Tile) SizeBytes() int64 {
	n := int64(len(t.Row))*4 + int64(len(t.Col))*4
	if t.Val != nil {
		n += int64(len(t.Val)) * 4
	}
	return n
}

// BuildFilter (re)builds the tile's source-vertex Bloom filter at the given
// false-positive rate.
func (t *Tile) BuildFilter(fpRate float64) {
	// Deduplicate sources first so the filter is sized for the distinct set.
	seen := make(map[uint32]struct{}, len(t.Col))
	for _, s := range t.Col {
		seen[s] = struct{}{}
	}
	f := bloom.New(len(seen), fpRate)
	for s := range seen {
		f.Add(s)
	}
	t.Filter = f
}

// Validate checks the structural invariants of the tile.
func (t *Tile) Validate() error {
	if t.TargetHi < t.TargetLo || t.TargetHi > t.NumVertices {
		return fmt.Errorf("csr: tile %d has bad target range [%d,%d) over %d vertices",
			t.ID, t.TargetLo, t.TargetHi, t.NumVertices)
	}
	if len(t.Row) != int(t.NumTargets())+1 {
		return fmt.Errorf("csr: tile %d row array has %d entries, want %d",
			t.ID, len(t.Row), t.NumTargets()+1)
	}
	if len(t.Row) > 0 {
		if t.Row[0] != 0 {
			return fmt.Errorf("csr: tile %d row[0] = %d, want 0", t.ID, t.Row[0])
		}
		for i := 1; i < len(t.Row); i++ {
			if t.Row[i] < t.Row[i-1] {
				return fmt.Errorf("csr: tile %d row not monotone at %d", t.ID, i)
			}
		}
		if int(t.Row[len(t.Row)-1]) != len(t.Col) {
			return fmt.Errorf("csr: tile %d row end %d != %d edges",
				t.ID, t.Row[len(t.Row)-1], len(t.Col))
		}
	}
	for i, s := range t.Col {
		if s >= t.NumVertices {
			return fmt.Errorf("csr: tile %d col[%d] = %d out of range", t.ID, i, s)
		}
	}
	if t.Val != nil && len(t.Val) != len(t.Col) {
		return fmt.Errorf("csr: tile %d val length %d != col length %d",
			t.ID, len(t.Val), len(t.Col))
	}
	return nil
}

const (
	tileMagic    = uint32(0x47485449) // "GHTI"
	flagWeighted = 1 << 0
	flagFilter   = 1 << 1
)

// Encode serializes the tile to its binary on-disk form: a fixed header,
// optional Bloom filter, the row/col/val arrays, and a trailing CRC-32 over
// everything before it.
func (t *Tile) Encode() []byte {
	var filterEnc []byte
	if t.Filter != nil {
		filterEnc = t.Filter.Encode()
	}
	size := 32 + len(filterEnc) + len(t.Row)*4 + len(t.Col)*4 + 4
	if t.Val != nil {
		size += len(t.Val) * 4
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:], tileMagic)
	binary.LittleEndian.PutUint32(buf[4:], t.ID)
	binary.LittleEndian.PutUint32(buf[8:], t.TargetLo)
	binary.LittleEndian.PutUint32(buf[12:], t.TargetHi)
	binary.LittleEndian.PutUint32(buf[16:], t.NumVertices)
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(t.Col)))
	var flags uint32
	if t.Val != nil {
		flags |= flagWeighted
	}
	if t.Filter != nil {
		flags |= flagFilter
	}
	binary.LittleEndian.PutUint32(buf[24:], flags)
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(filterEnc)))
	off := 32
	off += copy(buf[off:], filterEnc)
	for _, r := range t.Row {
		binary.LittleEndian.PutUint32(buf[off:], r)
		off += 4
	}
	for _, c := range t.Col {
		binary.LittleEndian.PutUint32(buf[off:], c)
		off += 4
	}
	if t.Val != nil {
		for _, v := range t.Val {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf
}

// Decode parses a tile encoded by Encode, verifying the checksum and all
// structural invariants. It returns a descriptive error on any corruption.
func Decode(data []byte) (*Tile, error) {
	if len(data) < 36 {
		return nil, fmt.Errorf("csr: encoded tile too short (%d bytes)", len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("csr: tile checksum mismatch (got %#x want %#x)", got, want)
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != tileMagic {
		return nil, fmt.Errorf("csr: bad tile magic %#x", m)
	}
	t := &Tile{
		ID:          binary.LittleEndian.Uint32(body[4:]),
		TargetLo:    binary.LittleEndian.Uint32(body[8:]),
		TargetHi:    binary.LittleEndian.Uint32(body[12:]),
		NumVertices: binary.LittleEndian.Uint32(body[16:]),
	}
	numEdges := binary.LittleEndian.Uint32(body[20:])
	flags := binary.LittleEndian.Uint32(body[24:])
	filterLen := binary.LittleEndian.Uint32(body[28:])
	if t.TargetHi < t.TargetLo {
		return nil, fmt.Errorf("csr: inverted target range [%d,%d)", t.TargetLo, t.TargetHi)
	}
	numRow := uint64(t.TargetHi-t.TargetLo) + 1
	want := uint64(32) + uint64(filterLen) + numRow*4 + uint64(numEdges)*4
	if flags&flagWeighted != 0 {
		want += uint64(numEdges) * 4
	}
	if uint64(len(body)) != want {
		return nil, fmt.Errorf("csr: tile body %d bytes, want %d", len(body), want)
	}
	off := 32
	if flags&flagFilter != 0 {
		f, err := bloom.Decode(body[off : off+int(filterLen)])
		if err != nil {
			return nil, fmt.Errorf("csr: tile filter: %w", err)
		}
		t.Filter = f
	}
	off += int(filterLen)
	t.Row = make([]uint32, numRow)
	for i := range t.Row {
		t.Row[i] = binary.LittleEndian.Uint32(body[off:])
		off += 4
	}
	t.Col = make([]uint32, numEdges)
	for i := range t.Col {
		t.Col[i] = binary.LittleEndian.Uint32(body[off:])
		off += 4
	}
	if flags&flagWeighted != 0 {
		t.Val = make([]float32, numEdges)
		for i := range t.Val {
			t.Val[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
			off += 4
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
