// Package csr implements GraphH's tile data structure: the "enhanced CSR"
// representation of §III-B-2. A tile owns all in-edges of a contiguous
// target-vertex range and stores them as three arrays — row (per-target
// offsets), col (global source ids) and val (edge values, omitted for
// unweighted graphs) — plus a Bloom filter over its source vertices used for
// inactive-tile skipping (§III-C-4).
//
// Tiles serialize to a checksummed binary form; that is the unit persisted
// to the DFS by the pre-processing engine, fetched to local disk by compute
// servers, and held (possibly compressed) by the edge cache.
package csr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"

	"repro/internal/bloom"
	"repro/internal/wordcodec"
)

// Tile holds the in-edges of the target-vertex range [TargetLo, TargetHi).
type Tile struct {
	// ID is the tile's index in the global tile sequence; MPE assigns tile
	// i to server i mod N (§III-C-1).
	ID uint32
	// TargetLo and TargetHi delimit the half-open target-vertex range.
	TargetLo, TargetHi uint32
	// NumVertices is |V| of the whole graph; source ids are < NumVertices.
	NumVertices uint32
	// Row has TargetHi-TargetLo+1 entries; the in-edges of local target t
	// (global id TargetLo+t) occupy Col[Row[t]:Row[t+1]].
	Row []uint32
	// Col holds global source vertex ids in target-major order.
	Col []uint32
	// Val holds edge values parallel to Col; nil for unweighted graphs,
	// in which case every edge value is 1 (§III-B-2).
	Val []float32
	// Filter is the Bloom filter over the distinct source vertices in Col.
	Filter *bloom.Filter

	// backing is DecodeInto's combined row+col storage: both arrays are
	// adjacent in the encoded body, so one bulk copy fills them, and reuse
	// settles at the largest tile seen instead of reallocating whenever
	// shapes alternate. Tiles built field-by-field leave it nil.
	backing []uint32
}

// Clone returns a deep copy of the tile that owns all of its storage —
// required before retaining a tile that was decoded into reusable scratch.
func (t *Tile) Clone() *Tile {
	c := &Tile{
		ID:          t.ID,
		TargetLo:    t.TargetLo,
		TargetHi:    t.TargetHi,
		NumVertices: t.NumVertices,
		Row:         slices.Clone(t.Row),
		Col:         slices.Clone(t.Col),
		Val:         slices.Clone(t.Val),
	}
	if t.Filter != nil {
		c.Filter = t.Filter.Clone()
	}
	return c
}

// NumTargets returns the number of target vertices covered by the tile.
func (t *Tile) NumTargets() uint32 { return t.TargetHi - t.TargetLo }

// NumEdges returns the number of edges stored in the tile.
func (t *Tile) NumEdges() int { return len(t.Col) }

// Weighted reports whether the tile carries explicit edge values.
func (t *Tile) Weighted() bool { return t.Val != nil }

// InEdges returns the source ids and edge values of the in-edges of the
// global target vertex v, which must lie in [TargetLo, TargetHi). The value
// slice is nil for unweighted tiles. Returned slices alias tile storage.
func (t *Tile) InEdges(v uint32) (sources []uint32, values []float32) {
	local := v - t.TargetLo
	lo, hi := t.Row[local], t.Row[local+1]
	sources = t.Col[lo:hi]
	if t.Val != nil {
		values = t.Val[lo:hi]
	}
	return sources, values
}

// SizeBytes returns the in-memory footprint of the tile arrays, the quantity
// the edge cache budgets against (§IV-B).
func (t *Tile) SizeBytes() int64 {
	n := int64(len(t.Row))*4 + int64(len(t.Col))*4
	if t.Val != nil {
		n += int64(len(t.Val)) * 4
	}
	return n
}

// BuildFilter (re)builds the tile's source-vertex Bloom filter at the given
// false-positive rate.
func (t *Tile) BuildFilter(fpRate float64) {
	// Deduplicate sources first so the filter is sized for the distinct set:
	// radix-sort a copy and skip repeats, which beats a map by a wide margin
	// at tile sizes and allocates nothing beyond two scratch slices.
	sorted := make([]uint32, len(t.Col))
	copy(sorted, t.Col)
	radixSortUint32(sorted)
	distinct := 0
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			distinct++
		}
	}
	f := bloom.New(distinct, fpRate)
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			f.Add(s)
		}
	}
	t.Filter = f
}

// radixSortUint32 sorts a in place with a 4-pass LSD byte radix sort,
// skipping passes whose byte is constant across the keys (always the high
// bytes for tiles over small vertex ranges). Far faster than a comparison
// sort on the uniform-ish source ids of a tile.
func radixSortUint32(a []uint32) {
	// Below this size the counting passes dominate; fall back.
	if len(a) < 512 {
		slices.Sort(a)
		return
	}
	var counts [4][256]int
	for _, v := range a {
		counts[0][byte(v)]++
		counts[1][byte(v>>8)]++
		counts[2][byte(v>>16)]++
		counts[3][byte(v>>24)]++
	}
	scratch := make([]uint32, len(a))
	src, dst := a, scratch
	for pass := 0; pass < 4; pass++ {
		c := &counts[pass]
		shift := 8 * pass
		uniform := c[byte(src[0]>>shift)] == len(a)
		if uniform {
			continue
		}
		var offs [256]int
		sum := 0
		for i, n := range c {
			offs[i] = sum
			sum += n
		}
		for _, v := range src {
			b := byte(v >> shift)
			dst[offs[b]] = v
			offs[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// Validate checks the structural invariants of the tile.
func (t *Tile) Validate() error {
	if t.TargetHi < t.TargetLo || t.TargetHi > t.NumVertices {
		return fmt.Errorf("csr: tile %d has bad target range [%d,%d) over %d vertices",
			t.ID, t.TargetLo, t.TargetHi, t.NumVertices)
	}
	if len(t.Row) != int(t.NumTargets())+1 {
		return fmt.Errorf("csr: tile %d row array has %d entries, want %d",
			t.ID, len(t.Row), t.NumTargets()+1)
	}
	if len(t.Row) > 0 {
		if t.Row[0] != 0 {
			return fmt.Errorf("csr: tile %d row[0] = %d, want 0", t.ID, t.Row[0])
		}
		for i := 1; i < len(t.Row); i++ {
			if t.Row[i] < t.Row[i-1] {
				return fmt.Errorf("csr: tile %d row not monotone at %d", t.ID, i)
			}
		}
		if int(t.Row[len(t.Row)-1]) != len(t.Col) {
			return fmt.Errorf("csr: tile %d row end %d != %d edges",
				t.ID, t.Row[len(t.Row)-1], len(t.Col))
		}
	}
	for i, s := range t.Col {
		if s >= t.NumVertices {
			return fmt.Errorf("csr: tile %d col[%d] = %d out of range", t.ID, i, s)
		}
	}
	if t.Val != nil && len(t.Val) != len(t.Col) {
		return fmt.Errorf("csr: tile %d val length %d != col length %d",
			t.ID, len(t.Val), len(t.Col))
	}
	return nil
}

const (
	tileMagic    = uint32(0x47485449) // "GHTI"
	flagWeighted = 1 << 0
	flagFilter   = 1 << 1
)

// EncodedSize returns the exact length of the tile's binary form.
func (t *Tile) EncodedSize() int {
	size := 32 + len(t.Row)*4 + len(t.Col)*4 + 4
	if t.Filter != nil {
		size += t.Filter.EncodedSize()
	}
	if t.Val != nil {
		size += len(t.Val) * 4
	}
	return size
}

// AppendEncode appends the tile's binary on-disk form to dst and returns the
// extended slice: a fixed header, optional Bloom filter, the row/col/val
// arrays, and a trailing CRC-32 over everything before it. The arrays are
// written with bulk word conversion, so encoding cost is a handful of
// memmoves plus the checksum.
func (t *Tile) AppendEncode(dst []byte) []byte {
	start := len(dst)
	dst = slices.Grow(dst, t.EncodedSize())

	var hdr [32]byte
	binary.LittleEndian.PutUint32(hdr[0:], tileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], t.ID)
	binary.LittleEndian.PutUint32(hdr[8:], t.TargetLo)
	binary.LittleEndian.PutUint32(hdr[12:], t.TargetHi)
	binary.LittleEndian.PutUint32(hdr[16:], t.NumVertices)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(t.Col)))
	var flags uint32
	if t.Val != nil {
		flags |= flagWeighted
	}
	var filterLen int
	if t.Filter != nil {
		flags |= flagFilter
		filterLen = t.Filter.EncodedSize()
	}
	binary.LittleEndian.PutUint32(hdr[24:], flags)
	binary.LittleEndian.PutUint32(hdr[28:], uint32(filterLen))
	dst = append(dst, hdr[:]...)
	if t.Filter != nil {
		dst = t.Filter.AppendEncode(dst)
	}

	off := len(dst)
	arrays := len(t.Row)*4 + len(t.Col)*4
	if t.Val != nil {
		arrays += len(t.Val) * 4
	}
	dst = dst[:off+arrays]
	wordcodec.PutUint32s(dst[off:], t.Row)
	off += len(t.Row) * 4
	wordcodec.PutUint32s(dst[off:], t.Col)
	off += len(t.Col) * 4
	if t.Val != nil {
		wordcodec.PutFloat32s(dst[off:], t.Val)
	}

	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(dst[start:]))
	return append(dst, crc[:]...)
}

// Encode serializes the tile to its binary on-disk form.
func (t *Tile) Encode() []byte {
	return t.AppendEncode(make([]byte, 0, t.EncodedSize()))
}

// Decode parses a tile encoded by Encode, verifying the checksum and all
// structural invariants. It returns a descriptive error on any corruption.
func Decode(data []byte) (*Tile, error) {
	t := new(Tile)
	if err := DecodeInto(t, data); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeInto parses a tile encoded by Encode into t, verifying the checksum
// and all structural invariants. It reuses t's row/col/val arrays and Bloom
// filter storage when their capacity suffices, so refilling the same Tile —
// the edge-cache miss path — is allocation-free in steady state. The decoded
// tile owns its memory; it never aliases data. On error the tile's contents
// are unspecified and must not be used.
func DecodeInto(t *Tile, data []byte) error {
	if len(data) < 36 {
		return fmt.Errorf("csr: encoded tile too short (%d bytes)", len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return fmt.Errorf("csr: tile checksum mismatch (got %#x want %#x)", got, want)
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != tileMagic {
		return fmt.Errorf("csr: bad tile magic %#x", m)
	}
	t.ID = binary.LittleEndian.Uint32(body[4:])
	t.TargetLo = binary.LittleEndian.Uint32(body[8:])
	t.TargetHi = binary.LittleEndian.Uint32(body[12:])
	t.NumVertices = binary.LittleEndian.Uint32(body[16:])
	numEdges := binary.LittleEndian.Uint32(body[20:])
	flags := binary.LittleEndian.Uint32(body[24:])
	filterLen := binary.LittleEndian.Uint32(body[28:])
	if t.TargetHi < t.TargetLo {
		return fmt.Errorf("csr: inverted target range [%d,%d)", t.TargetLo, t.TargetHi)
	}
	numRow := uint64(t.TargetHi-t.TargetLo) + 1
	want := uint64(32) + uint64(filterLen) + numRow*4 + uint64(numEdges)*4
	if flags&flagWeighted != 0 {
		want += uint64(numEdges) * 4
	}
	if uint64(len(body)) != want {
		return fmt.Errorf("csr: tile body %d bytes, want %d", len(body), want)
	}
	off := 32
	if flags&flagFilter != 0 {
		if t.Filter == nil {
			t.Filter = new(bloom.Filter)
		}
		if err := bloom.DecodeInto(t.Filter, body[off:off+int(filterLen)]); err != nil {
			return fmt.Errorf("csr: tile filter: %w", err)
		}
	} else {
		t.Filter = nil
	}
	off += int(filterLen)
	nr, ne := int(numRow), int(numEdges)
	if cap(t.backing) < nr+ne {
		t.backing = make([]uint32, nr+ne)
	} else {
		t.backing = t.backing[:nr+ne]
	}
	wordcodec.Uint32s(t.backing, body[off:])
	// Capped subslices keep hypothetical appends from crossing the boundary.
	t.Row = t.backing[:nr:nr]
	t.Col = t.backing[nr : nr+ne : nr+ne]
	off += (nr + ne) * 4
	if flags&flagWeighted != 0 {
		t.Val = growFloat32(t.Val, ne)
		wordcodec.Float32s(t.Val, body[off:])
	} else {
		t.Val = nil
	}
	return t.Validate()
}

// growFloat32 resizes s to n elements, reusing its backing array if possible.
func growFloat32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}
