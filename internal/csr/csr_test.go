package csr

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// buildTile constructs a small valid tile covering targets [lo,hi) with
// random edges.
func buildTile(rng *rand.Rand, id, lo, hi, nv uint32, weighted bool) *Tile {
	t := &Tile{ID: id, TargetLo: lo, TargetHi: hi, NumVertices: nv}
	nTargets := hi - lo
	t.Row = make([]uint32, nTargets+1)
	var edges []uint32
	var vals []float32
	for i := uint32(0); i < nTargets; i++ {
		deg := rng.Uint32N(5)
		t.Row[i+1] = t.Row[i] + deg
		for j := uint32(0); j < deg; j++ {
			edges = append(edges, rng.Uint32N(nv))
			vals = append(vals, float32(rng.Uint32N(100))/10+0.1)
		}
	}
	t.Col = edges
	if weighted {
		t.Val = vals
	}
	return t
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, weighted := range []bool{false, true} {
		for _, withFilter := range []bool{false, true} {
			tl := buildTile(rng, 3, 10, 50, 100, weighted)
			if withFilter {
				tl.BuildFilter(0.01)
			}
			if err := tl.Validate(); err != nil {
				t.Fatal(err)
			}
			got, err := Decode(tl.Encode())
			if err != nil {
				t.Fatalf("weighted=%v filter=%v: %v", weighted, withFilter, err)
			}
			if got.ID != tl.ID || got.TargetLo != tl.TargetLo || got.TargetHi != tl.TargetHi ||
				got.NumVertices != tl.NumVertices {
				t.Fatalf("header mismatch: %+v vs %+v", got, tl)
			}
			if got.NumEdges() != tl.NumEdges() {
				t.Fatalf("edge count %d != %d", got.NumEdges(), tl.NumEdges())
			}
			for i := range tl.Col {
				if got.Col[i] != tl.Col[i] {
					t.Fatalf("col[%d] mismatch", i)
				}
			}
			if weighted {
				for i := range tl.Val {
					if got.Val[i] != tl.Val[i] {
						t.Fatalf("val[%d] mismatch", i)
					}
				}
			} else if got.Val != nil {
				t.Fatal("unweighted tile decoded with values")
			}
			if withFilter {
				if got.Filter == nil {
					t.Fatal("filter lost in round trip")
				}
				for _, s := range tl.Col {
					if !got.Filter.Contains(s) {
						t.Fatalf("decoded filter missing source %d", s)
					}
				}
			} else if got.Filter != nil {
				t.Fatal("phantom filter after decode")
			}
		}
	}
}

func TestInEdges(t *testing.T) {
	tl := &Tile{
		ID: 0, TargetLo: 5, TargetHi: 8, NumVertices: 10,
		Row: []uint32{0, 2, 2, 5},
		Col: []uint32{1, 9, 0, 3, 4},
		Val: []float32{1, 2, 3, 4, 5},
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	srcs, vals := tl.InEdges(5)
	if len(srcs) != 2 || srcs[0] != 1 || srcs[1] != 9 || vals[1] != 2 {
		t.Fatalf("InEdges(5) = %v, %v", srcs, vals)
	}
	srcs, _ = tl.InEdges(6)
	if len(srcs) != 0 {
		t.Fatalf("InEdges(6) = %v, want empty", srcs)
	}
	srcs, vals = tl.InEdges(7)
	if len(srcs) != 3 || vals[2] != 5 {
		t.Fatalf("InEdges(7) = %v, %v", srcs, vals)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := func() *Tile {
		return &Tile{
			ID: 0, TargetLo: 0, TargetHi: 2, NumVertices: 4,
			Row: []uint32{0, 1, 2}, Col: []uint32{3, 1},
		}
	}
	cases := map[string]func(*Tile){
		"inverted range":   func(t *Tile) { t.TargetLo, t.TargetHi = 2, 0 },
		"range overflow":   func(t *Tile) { t.TargetHi = 99 },
		"row length":       func(t *Tile) { t.Row = t.Row[:2] },
		"row start":        func(t *Tile) { t.Row[0] = 1 },
		"row monotone":     func(t *Tile) { t.Row[1] = 5 },
		"row end":          func(t *Tile) { t.Row[2] = 1 },
		"col out of range": func(t *Tile) { t.Col[0] = 100 },
		"val length":       func(t *Tile) { t.Val = []float32{1} },
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("baseline tile invalid: %v", err)
	}
	for name, corrupt := range cases {
		tl := good()
		corrupt(tl)
		if err := tl.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestDecodeRejectsBitrot(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	tl := buildTile(rng, 1, 0, 20, 40, true)
	tl.BuildFilter(0.01)
	enc := tl.Encode()
	if _, err := Decode(enc[:10]); err == nil {
		t.Fatal("truncated tile accepted")
	}
	// Flip one byte anywhere: the CRC must catch it.
	for _, pos := range []int{0, 5, 16, len(enc) / 2, len(enc) - 5} {
		bad := make([]byte, len(enc))
		copy(bad, enc)
		bad[pos] ^= 0xFF
		if _, err := Decode(bad); err == nil {
			t.Errorf("bit flip at %d not detected", pos)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	tl := &Tile{
		TargetLo: 0, TargetHi: 2, NumVertices: 4,
		Row: []uint32{0, 1, 2}, Col: []uint32{3, 1},
	}
	if got := tl.SizeBytes(); got != 3*4+2*4 {
		t.Fatalf("SizeBytes = %d, want 20", got)
	}
	tl.Val = []float32{1, 2}
	if got := tl.SizeBytes(); got != 3*4+2*4+2*4 {
		t.Fatalf("weighted SizeBytes = %d, want 28", got)
	}
}

func TestEmptyTile(t *testing.T) {
	tl := &Tile{ID: 7, TargetLo: 3, TargetHi: 3, NumVertices: 10, Row: []uint32{0}}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(tl.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTargets() != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty tile round trip: %+v", got)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	prop := func(seed uint64, weighted, filtered bool) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		nv := rng.Uint32N(100) + 2
		lo := rng.Uint32N(nv - 1)
		hi := lo + rng.Uint32N(nv-lo)
		tl := buildTile(rng, rng.Uint32(), lo, hi, nv, weighted)
		if filtered {
			tl.BuildFilter(0.01)
		}
		got, err := Decode(tl.Encode())
		if err != nil {
			return false
		}
		if got.NumEdges() != tl.NumEdges() || got.NumTargets() != tl.NumTargets() {
			return false
		}
		for i := range tl.Row {
			if got.Row[i] != tl.Row[i] {
				return false
			}
		}
		for i := range tl.Col {
			if got.Col[i] != tl.Col[i] {
				return false
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
