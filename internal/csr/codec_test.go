package csr

import (
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/racedetect"
)

// TestDecodeIntoReuse drives one Tile through decodes of different shapes —
// weighted after unweighted, shrinking and growing, with and without filter
// — and checks each result independently.
func TestDecodeIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	var dst Tile
	shapes := []struct {
		lo, hi, nv uint32
		weighted   bool
		filtered   bool
	}{
		{0, 40, 80, true, true},
		{5, 10, 20, false, false}, // shrink, drop weights and filter
		{0, 200, 400, true, false},
		{3, 3, 10, false, true}, // empty target range
		{0, 100, 150, false, true},
	}
	for i, sh := range shapes {
		want := buildTile(rng, uint32(i), sh.lo, sh.hi, sh.nv, sh.weighted)
		if sh.filtered {
			want.BuildFilter(0.01)
		}
		enc := want.Encode()
		if err := DecodeInto(&dst, enc); err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		if dst.ID != want.ID || dst.TargetLo != want.TargetLo || dst.TargetHi != want.TargetHi {
			t.Fatalf("shape %d: header mismatch %+v", i, dst)
		}
		if dst.NumEdges() != want.NumEdges() {
			t.Fatalf("shape %d: %d edges, want %d", i, dst.NumEdges(), want.NumEdges())
		}
		for j := range want.Col {
			if dst.Col[j] != want.Col[j] {
				t.Fatalf("shape %d: col[%d] mismatch", i, j)
			}
		}
		if sh.weighted {
			for j := range want.Val {
				if dst.Val[j] != want.Val[j] {
					t.Fatalf("shape %d: val[%d] mismatch", i, j)
				}
			}
		} else if dst.Val != nil {
			t.Fatalf("shape %d: phantom values", i)
		}
		if sh.filtered {
			if dst.Filter == nil {
				t.Fatalf("shape %d: filter lost", i)
			}
			for _, s := range want.Col {
				if !dst.Filter.Contains(s) {
					t.Fatalf("shape %d: filter missing source %d", i, s)
				}
			}
		} else if dst.Filter != nil {
			t.Fatalf("shape %d: phantom filter", i)
		}
	}
}

// TestDecodeIntoDoesNotAliasInput corrupts the encoded buffer after decoding
// and checks the tile is unaffected — DecodeInto must copy, not alias.
func TestDecodeIntoDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	want := buildTile(rng, 1, 0, 30, 60, true)
	enc := want.Encode()
	var dst Tile
	if err := DecodeInto(&dst, enc); err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xEE
	}
	for j := range want.Col {
		if dst.Col[j] != want.Col[j] {
			t.Fatalf("col[%d] changed after input corruption: decode aliased input", j)
		}
	}
}

// TestDecodeIntoAllocs pins the steady-state cache-miss refill path to zero
// allocations: once a Tile has been through one decode of each shape, later
// decodes reuse all of its storage.
func TestDecodeIntoAllocs(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	tl := buildBigTile(1<<14, true)
	tl.BuildFilter(0.01)
	enc := tl.Encode()
	var dst Tile
	if err := DecodeInto(&dst, enc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := DecodeInto(&dst, enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeInto allocates %.1f times per warm call, want 0", allocs)
	}
}

// TestAppendEncodeAllocs pins warm-buffer encoding to zero allocations.
func TestAppendEncodeAllocs(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	tl := buildBigTile(1<<14, true)
	tl.BuildFilter(0.01)
	buf := tl.Encode()
	allocs := testing.AllocsPerRun(20, func() {
		buf = tl.AppendEncode(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendEncode allocates %.1f times per warm call, want 0", allocs)
	}
}

// TestDecodeIntoRejectsCorruption runs the corrupt-input table against the
// reusable-decode path, including a pre-populated destination tile, to make
// sure buffer reuse does not weaken validation.
func TestDecodeIntoRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	good := buildTile(rng, 2, 0, 25, 50, true)
	good.BuildFilter(0.01)
	enc := good.Encode()

	cases := map[string]func([]byte) []byte{
		"empty":            func(e []byte) []byte { return nil },
		"short":            func(e []byte) []byte { return e[:20] },
		"truncated tail":   func(e []byte) []byte { return e[:len(e)-8] },
		"crc flip":         func(e []byte) []byte { e[len(e)-1] ^= 0xFF; return e },
		"magic flip":       func(e []byte) []byte { e[0] ^= 0xFF; return e },
		"header bit":       func(e []byte) []byte { e[9] ^= 0x10; return e },
		"filter byte":      func(e []byte) []byte { e[40] ^= 0x01; return e },
		"mid-payload bit":  func(e []byte) []byte { e[len(e)/2] ^= 0x80; return e },
		"extension":        func(e []byte) []byte { return append(e, 0) },
		"zeroed checksum":  func(e []byte) []byte { copy(e[len(e)-4:], []byte{0, 0, 0, 0}); return e },
		"swapped sections": func(e []byte) []byte { e[33], e[len(e)-9] = e[len(e)-9], e[33]; return e },
	}
	for name, corrupt := range cases {
		bad := corrupt(append([]byte(nil), enc...))
		var dst Tile
		// Pre-populate dst so a failed decode has stale storage to misuse.
		if err := DecodeInto(&dst, enc); err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(&dst, bad); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// TestRadixSortUint32 checks the radix sort against the standard sort on
// assorted shapes, including sizes below the fallback threshold, constant
// high bytes, and full-range values.
func TestRadixSortUint32(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 17))
	for _, tc := range []struct {
		n   int
		gen func() uint32
	}{
		{0, rng.Uint32},
		{1, rng.Uint32},
		{100, rng.Uint32},
		{511, rng.Uint32},
		{512, rng.Uint32},
		{5000, rng.Uint32},
		{5000, func() uint32 { return rng.Uint32N(300) }}, // constant high bytes
		{5000, func() uint32 { return rng.Uint32N(7) }},   // heavy duplicates
		{5000, func() uint32 { return rng.Uint32() | 1 }}, // all four passes live
		{4096, func() uint32 { return 42 }},               // fully uniform
	} {
		a := make([]uint32, tc.n)
		for i := range a {
			a[i] = tc.gen()
		}
		want := make([]uint32, len(a))
		copy(want, a)
		slices.Sort(want)
		radixSortUint32(a)
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("n=%d: radix sort diverges from slices.Sort at %d", tc.n, i)
			}
		}
	}
}

// FuzzDecode feeds arbitrary bytes and mutated valid encodings through both
// decode paths; they must never panic, must agree on acceptance, and any
// accepted tile must re-encode to a decodable form.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewPCG(21, 21))
	for _, weighted := range []bool{false, true} {
		tl := buildTile(rng, 9, 2, 34, 70, weighted)
		tl.BuildFilter(0.05)
		f.Add(tl.Encode())
	}
	f.Add([]byte{})
	f.Add(make([]byte, 36))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		var dst Tile
		errInto := DecodeInto(&dst, data)
		if (err == nil) != (errInto == nil) {
			t.Fatalf("Decode err=%v but DecodeInto err=%v", err, errInto)
		}
		if err != nil {
			return
		}
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("accepted tile fails validation: %v", vErr)
		}
		if _, err := Decode(got.Encode()); err != nil {
			t.Fatalf("re-encoded tile rejected: %v", err)
		}
	})
}
