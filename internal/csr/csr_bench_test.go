package csr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/bloom"
)

// buildBigTile constructs a tile with the given edge count for codec
// benchmarks (~8 edges per target, uniform random sources).
func buildBigTile(nEdges int, weighted bool) *Tile {
	rng := rand.New(rand.NewPCG(42, 42))
	nTargets := uint32(nEdges / 8)
	if nTargets < 1 {
		nTargets = 1
	}
	nv := nTargets * 4
	t := &Tile{ID: 1, TargetLo: 0, TargetHi: nTargets, NumVertices: nv}
	t.Row = make([]uint32, nTargets+1)
	perTarget := uint32(nEdges) / nTargets
	for i := uint32(0); i < nTargets; i++ {
		t.Row[i+1] = t.Row[i] + perTarget
	}
	n := int(t.Row[nTargets])
	t.Col = make([]uint32, n)
	for i := range t.Col {
		t.Col[i] = rng.Uint32N(nv)
	}
	if weighted {
		t.Val = make([]float32, n)
		for i := range t.Val {
			t.Val[i] = rng.Float32()
		}
	}
	return t
}

// decodePerWord is the pre-optimization reference decoder: one
// binary.LittleEndian call per array element. It is kept verbatim so
// BenchmarkTileDecode vs BenchmarkTileDecodePerWordReference measures the
// bulk-conversion speedup on every run.
func decodePerWord(data []byte) (*Tile, error) {
	if len(data) < 36 {
		return nil, fmt.Errorf("csr: encoded tile too short (%d bytes)", len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("csr: tile checksum mismatch (got %#x want %#x)", got, want)
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != tileMagic {
		return nil, fmt.Errorf("csr: bad tile magic %#x", m)
	}
	t := &Tile{
		ID:          binary.LittleEndian.Uint32(body[4:]),
		TargetLo:    binary.LittleEndian.Uint32(body[8:]),
		TargetHi:    binary.LittleEndian.Uint32(body[12:]),
		NumVertices: binary.LittleEndian.Uint32(body[16:]),
	}
	numEdges := binary.LittleEndian.Uint32(body[20:])
	flags := binary.LittleEndian.Uint32(body[24:])
	filterLen := binary.LittleEndian.Uint32(body[28:])
	if t.TargetHi < t.TargetLo {
		return nil, fmt.Errorf("csr: inverted target range [%d,%d)", t.TargetLo, t.TargetHi)
	}
	numRow := uint64(t.TargetHi-t.TargetLo) + 1
	want := uint64(32) + uint64(filterLen) + numRow*4 + uint64(numEdges)*4
	if flags&flagWeighted != 0 {
		want += uint64(numEdges) * 4
	}
	if uint64(len(body)) != want {
		return nil, fmt.Errorf("csr: tile body %d bytes, want %d", len(body), want)
	}
	off := 32
	if flags&flagFilter != 0 {
		f, err := bloom.Decode(body[off : off+int(filterLen)])
		if err != nil {
			return nil, fmt.Errorf("csr: tile filter: %w", err)
		}
		t.Filter = f
	}
	off += int(filterLen)
	t.Row = make([]uint32, numRow)
	for i := range t.Row {
		t.Row[i] = binary.LittleEndian.Uint32(body[off:])
		off += 4
	}
	t.Col = make([]uint32, numEdges)
	for i := range t.Col {
		t.Col[i] = binary.LittleEndian.Uint32(body[off:])
		off += 4
	}
	if flags&flagWeighted != 0 {
		t.Val = make([]float32, numEdges)
		for i := range t.Val {
			t.Val[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
			off += 4
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// TestDecodePerWordReferenceAgrees pins the reference decoder to the real
// one, so the benchmark comparison stays honest.
func TestDecodePerWordReferenceAgrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	tl := buildTile(rng, 2, 4, 60, 90, true)
	tl.BuildFilter(0.01)
	enc := tl.Encode()
	a, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decodePerWord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID || a.NumEdges() != b.NumEdges() || a.NumTargets() != b.NumTargets() {
		t.Fatalf("decoders disagree: %+v vs %+v", a, b)
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] || a.Val[i] != b.Val[i] {
			t.Fatalf("decoders disagree at edge %d", i)
		}
	}
}

const benchEdges = 1 << 20 // ≥1M edges per the acceptance criterion

func BenchmarkTileDecode(b *testing.B) {
	tl := buildBigTile(benchEdges, true)
	enc := tl.Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTileDecodeInto(b *testing.B) {
	tl := buildBigTile(benchEdges, true)
	enc := tl.Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	var dst Tile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(&dst, enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTileDecodePerWordReference(b *testing.B) {
	tl := buildBigTile(benchEdges, true)
	enc := tl.Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodePerWord(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTileEncode(b *testing.B) {
	tl := buildBigTile(benchEdges, true)
	b.SetBytes(int64(tl.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tl.Encode()
	}
}

func BenchmarkTileAppendEncode(b *testing.B) {
	tl := buildBigTile(benchEdges, true)
	b.SetBytes(int64(tl.EncodedSize()))
	b.ReportAllocs()
	buf := make([]byte, 0, tl.EncodedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tl.AppendEncode(buf[:0])
	}
}

func BenchmarkBuildFilter(b *testing.B) {
	tl := buildBigTile(benchEdges, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.BuildFilter(0.01)
	}
}
