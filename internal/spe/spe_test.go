package spe

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/dfs"
	"repro/internal/graph"
	"repro/internal/tile"
)

func newTestEngine(t *testing.T, parallelism int) *Engine {
	t.Helper()
	base := t.TempDir()
	dirs := []string{filepath.Join(base, "dn0"), filepath.Join(base, "dn1")}
	d, err := dfs.New(dirs, dfs.Config{Replication: 1, BlockSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return New(d, parallelism)
}

func storeBinary(t *testing.T, e *Engine, el *graph.EdgeList, path string) {
	t.Helper()
	var buf bytes.Buffer
	if err := el.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.DFS.WriteFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestPreprocessMatchesInMemoryPartitioner(t *testing.T) {
	el := graph.GenerateRMAT(graph.DefaultRMAT(), 500, 5000, 21)
	el.Name = "equiv"
	e := newTestEngine(t, 4)
	storeBinary(t, e, el, "raw/equiv.bin")

	opts := tile.Options{TileSize: 700}
	man, err := e.Preprocess("raw/equiv.bin", "out/equiv", opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tile.Split(el, opts)
	if err != nil {
		t.Fatal(err)
	}
	if man.NumTiles() != ref.NumTiles() {
		t.Fatalf("SPE built %d tiles, partitioner %d", man.NumTiles(), ref.NumTiles())
	}
	if len(man.Splitter) != len(ref.Splitter) {
		t.Fatalf("splitter length %d vs %d", len(man.Splitter), len(ref.Splitter))
	}
	for i := range man.Splitter {
		if man.Splitter[i] != ref.Splitter[i] {
			t.Fatalf("splitter[%d] = %d vs %d", i, man.Splitter[i], ref.Splitter[i])
		}
	}
	for i := 0; i < man.NumTiles(); i++ {
		got, err := e.FetchTile(man, i)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Tiles[i]
		if got.TargetLo != want.TargetLo || got.TargetHi != want.TargetHi {
			t.Fatalf("tile %d range mismatch", i)
		}
		if got.NumEdges() != want.NumEdges() {
			t.Fatalf("tile %d edges %d vs %d", i, got.NumEdges(), want.NumEdges())
		}
		for j := range want.Col {
			if got.Col[j] != want.Col[j] {
				t.Fatalf("tile %d col[%d] = %d vs %d", i, j, got.Col[j], want.Col[j])
			}
		}
		for j := range want.Row {
			if got.Row[j] != want.Row[j] {
				t.Fatalf("tile %d row[%d] mismatch", i, j)
			}
		}
	}
}

func TestPreprocessDegrees(t *testing.T) {
	el := graph.GenerateUniform(300, 3000, 31)
	el.Name = "deg"
	e := newTestEngine(t, 3)
	man, err := e.PreprocessEdgeList(el, "out/deg", tile.Options{TileSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := e.FetchDegrees(man)
	if err != nil {
		t.Fatal(err)
	}
	wantIn, wantOut := el.Degrees()
	for v := range wantIn {
		if in[v] != wantIn[v] || out[v] != wantOut[v] {
			t.Fatalf("vertex %d degrees (%d,%d), want (%d,%d)", v, in[v], out[v], wantIn[v], wantOut[v])
		}
	}
}

func TestPreprocessParallelismInvariance(t *testing.T) {
	el := graph.GenerateRMAT(graph.DefaultRMAT(), 200, 2000, 41)
	el.Name = "par"
	var manifests []*Manifest
	var engines []*Engine
	for _, p := range []int{1, 2, 8} {
		e := newTestEngine(t, p)
		man, err := e.PreprocessEdgeList(el, "out/par", tile.Options{TileSize: 300})
		if err != nil {
			t.Fatal(err)
		}
		manifests = append(manifests, man)
		engines = append(engines, e)
	}
	base := manifests[0]
	for k := 1; k < len(manifests); k++ {
		m := manifests[k]
		if m.NumTiles() != base.NumTiles() {
			t.Fatalf("parallelism changed tile count: %d vs %d", m.NumTiles(), base.NumTiles())
		}
		for i := 0; i < base.NumTiles(); i++ {
			a, err := engines[0].FetchTile(base, i)
			if err != nil {
				t.Fatal(err)
			}
			b, err := engines[k].FetchTile(m, i)
			if err != nil {
				t.Fatal(err)
			}
			if a.NumEdges() != b.NumEdges() {
				t.Fatalf("tile %d edge count differs with parallelism", i)
			}
			for j := range a.Col {
				if a.Col[j] != b.Col[j] {
					t.Fatalf("tile %d col[%d] differs with parallelism", i, j)
				}
			}
		}
	}
}

func TestPreprocessFromCSV(t *testing.T) {
	el := graph.GenerateUniform(50, 400, 3)
	el.Name = "csvgraph"
	e := newTestEngine(t, 2)
	var buf bytes.Buffer
	if err := el.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.DFS.WriteFile("raw/g.csv", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	man, err := e.Preprocess("raw/g.csv", "out/csv", tile.Options{TileSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if man.NumEdges != el.NumEdges() {
		t.Fatalf("manifest records %d edges, want %d", man.NumEdges, el.NumEdges())
	}
}

func TestManifestRoundTrip(t *testing.T) {
	el := graph.GenerateUniform(100, 800, 5)
	el.Name = "mani"
	e := newTestEngine(t, 2)
	man, err := e.PreprocessEdgeList(el, "out/mani", tile.Options{TileSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.LoadManifest("out/mani")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != man.Name || got.NumVertices != man.NumVertices ||
		got.NumEdges != man.NumEdges || got.NumTiles() != man.NumTiles() {
		t.Fatalf("manifest round trip mismatch: %+v vs %+v", got, man)
	}
	if got.TotalTileBytes() != man.TotalTileBytes() {
		t.Fatal("tile byte accounting changed in round trip")
	}
}

func TestWeightedPreprocess(t *testing.T) {
	el := graph.AttachWeights(graph.GenerateUniform(80, 600, 7), 3, 13)
	el.Name = "weighted"
	e := newTestEngine(t, 2)
	man, err := e.PreprocessEdgeList(el, "out/w", tile.Options{TileSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !man.Weighted {
		t.Fatal("weighted flag lost")
	}
	for i := 0; i < man.NumTiles(); i++ {
		tl, err := e.FetchTile(man, i)
		if err != nil {
			t.Fatal(err)
		}
		if !tl.Weighted() {
			t.Fatalf("tile %d lost weights", i)
		}
	}
}

func TestFetchTileOutOfRange(t *testing.T) {
	el := graph.GenerateUniform(20, 50, 1)
	el.Name = "small"
	e := newTestEngine(t, 1)
	man, err := e.PreprocessEdgeList(el, "out/s", tile.Options{TileSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.FetchTile(man, man.NumTiles()); err == nil {
		t.Fatal("out-of-range tile index accepted")
	}
	if _, err := e.FetchTile(man, -1); err == nil {
		t.Fatal("negative tile index accepted")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	e := newTestEngine(t, 1)
	if _, err := e.PreprocessEdgeList(&graph.EdgeList{}, "out/e", tile.Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestUint32Codec(t *testing.T) {
	cases := [][]uint32{nil, {}, {0}, {1, 2, 3, 1 << 31}, make([]uint32, 1000)}
	for _, c := range cases {
		got, err := DecodeUint32s(EncodeUint32s(c))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c) {
			t.Fatalf("length %d, want %d", len(got), len(c))
		}
		for i := range c {
			if got[i] != c[i] {
				t.Fatalf("element %d mismatch", i)
			}
		}
	}
	if _, err := DecodeUint32s([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := DecodeUint32s([]byte{5, 0, 0, 0, 1, 2}); err == nil {
		t.Fatal("inconsistent length accepted")
	}
}

func TestTileBytesMatchDFS(t *testing.T) {
	el := graph.GenerateUniform(150, 1200, 9)
	el.Name = "sizes"
	e := newTestEngine(t, 2)
	man, err := e.PreprocessEdgeList(el, "out/sz", tile.Options{TileSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range man.TilePaths {
		size, err := e.DFS.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if size != man.TileBytes[i] {
			t.Fatalf("tile %d manifest says %d bytes, DFS has %d", i, man.TileBytes[i], size)
		}
	}
	fmt.Printf("total tile bytes: %d (raw CSV: %d)\n", man.TotalTileBytes(), el.CSVSize())
}
