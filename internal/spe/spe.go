// Package spe implements GraphH's graph pre-processing engine (§III-B).
// The paper implements it on Spark ("SPE") as three map-reduce jobs
// (Algorithm 4): two jobs compute per-vertex in/out-degrees, a sequential
// sweep of the in-degree array derives the tile splitter, and a final
// group-by-tile job shuffles edges into tiles and encodes them in CSR form.
//
// This implementation runs the same three jobs on a goroutine pool and
// persists the same outputs to the DFS substrate: one encoded CSR tile per
// splitter range, the in-degree and out-degree arrays, and a JSON manifest.
// SPE runs once per input graph; the persisted tiles are then reused by the
// processing engine (MPE) across applications.
package spe

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"path"
	"strings"
	"sync"

	"repro/internal/csr"
	"repro/internal/dfs"
	"repro/internal/graph"
	"repro/internal/tile"
)

// Engine is the pre-processing engine. It reads raw graphs from, and writes
// tiles to, a DFS instance.
type Engine struct {
	// DFS is the storage layer.
	DFS *dfs.DFS
	// Parallelism is the mapper/reducer pool size; zero means 4.
	Parallelism int
}

// New returns an Engine over the given DFS.
func New(d *dfs.DFS, parallelism int) *Engine {
	if parallelism <= 0 {
		parallelism = 4
	}
	return &Engine{DFS: d, Parallelism: parallelism}
}

// Manifest records the outputs of one pre-processing run. It is stored as
// JSON next to the tiles and is everything MPE needs to locate its input.
type Manifest struct {
	Name        string   `json:"name"`
	NumVertices uint32   `json:"num_vertices"`
	NumEdges    int      `json:"num_edges"`
	Weighted    bool     `json:"weighted"`
	TileSize    int      `json:"tile_size"`
	Splitter    []uint32 `json:"splitter"`
	TilePaths   []string `json:"tile_paths"`
	TileBytes   []int64  `json:"tile_bytes"`
	InDegPath   string   `json:"indeg_path"`
	OutDegPath  string   `json:"outdeg_path"`
}

// NumTiles returns P.
func (m *Manifest) NumTiles() int { return len(m.TilePaths) }

// TotalTileBytes returns the summed encoded size of all tiles (the
// "GraphH input size" column of Table IV).
func (m *Manifest) TotalTileBytes() int64 {
	var n int64
	for _, b := range m.TileBytes {
		n += b
	}
	return n
}

// manifestPath returns the DFS path of the manifest inside outDir.
func manifestPath(outDir string) string { return path.Join(outDir, "manifest.json") }

// LoadRawGraph reads an edge list from the DFS. Files ending in ".csv" or
// ".txt" are parsed as text; everything else as the binary format.
func (e *Engine) LoadRawGraph(rawPath string) (*graph.EdgeList, error) {
	data, err := e.DFS.ReadFile(rawPath)
	if err != nil {
		return nil, fmt.Errorf("spe: loading raw graph: %w", err)
	}
	name := path.Base(rawPath)
	if strings.HasSuffix(rawPath, ".csv") || strings.HasSuffix(rawPath, ".txt") {
		return graph.ReadCSV(bytes.NewReader(data), name)
	}
	return graph.ReadBinary(bytes.NewReader(data), name)
}

// Preprocess runs the full pre-processing pipeline on the raw graph stored
// at rawPath and persists tiles, degree arrays and manifest under outDir.
func (e *Engine) Preprocess(rawPath, outDir string, opts tile.Options) (*Manifest, error) {
	el, err := e.LoadRawGraph(rawPath)
	if err != nil {
		return nil, err
	}
	return e.PreprocessEdgeList(el, outDir, opts)
}

// PreprocessEdgeList is Preprocess for an already-loaded edge list.
func (e *Engine) PreprocessEdgeList(el *graph.EdgeList, outDir string, opts tile.Options) (*Manifest, error) {
	if el.NumVertices == 0 {
		return nil, fmt.Errorf("spe: cannot pre-process an empty graph")
	}
	s := opts.TileSize
	if s <= 0 {
		s = tile.DefaultTileSize(el.NumEdges(), 1, 1)
	}
	fp := opts.BloomFPRate
	if fp == 0 {
		fp = 0.01
	}

	// Jobs 1–2: parallel degree counting (Algorithm 4 lines 1–2).
	in, out := e.parallelDegrees(el)

	// Splitter sweep (Algorithm 4 lines 3–8).
	splitter := buildSplitter(in, s)
	numTiles := len(splitter) - 1

	// Vertex → tile lookup for the shuffle.
	vertexTile := make([]uint32, el.NumVertices)
	for t := 0; t+1 < len(splitter); t++ {
		for v := splitter[t]; v < splitter[t+1]; v++ {
			vertexTile[v] = uint32(t)
		}
	}

	// Job 3: group edges by tile id (Algorithm 4 lines 9–10). Mappers
	// bucket contiguous edge ranges; concatenating buckets in mapper order
	// preserves the global edge order within every target vertex, so the
	// output is identical to a sequential pass.
	numMappers := e.Parallelism
	buckets := make([][][]graph.Edge, numMappers)
	var wg sync.WaitGroup
	chunk := (el.NumEdges() + numMappers - 1) / numMappers
	for m := 0; m < numMappers; m++ {
		lo := m * chunk
		hi := lo + chunk
		if hi > el.NumEdges() {
			hi = el.NumEdges()
		}
		buckets[m] = make([][]graph.Edge, numTiles)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(m, lo, hi int) {
			defer wg.Done()
			local := buckets[m]
			for _, edge := range el.Edges[lo:hi] {
				t := vertexTile[edge.Dst]
				local[t] = append(local[t], edge)
			}
		}(m, lo, hi)
	}
	wg.Wait()

	// Reducers: build, encode and persist one CSR tile per splitter range.
	man := &Manifest{
		Name:        el.Name,
		NumVertices: el.NumVertices,
		NumEdges:    el.NumEdges(),
		Weighted:    el.Weighted,
		TileSize:    s,
		Splitter:    splitter,
		TilePaths:   make([]string, numTiles),
		TileBytes:   make([]int64, numTiles),
	}
	errs := make([]error, numTiles)
	sem := make(chan struct{}, e.Parallelism)
	for t := 0; t < numTiles; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			tl := buildTile(uint32(t), splitter[t], splitter[t+1], el, in, buckets, t, fp)
			if err := tl.Validate(); err != nil {
				errs[t] = err
				return
			}
			p := path.Join(outDir, "tiles", fmt.Sprintf("tile-%05d", t))
			enc := tl.Encode()
			if err := e.DFS.WriteFile(p, enc); err != nil {
				errs[t] = err
				return
			}
			man.TilePaths[t] = p
			man.TileBytes[t] = int64(len(enc))
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("spe: building tiles: %w", err)
		}
	}

	// Persist degree arrays (§III-B-1: "SPE also computes each vertex's
	// in-degree and out-degree, and stores them as two arrays in DFS").
	man.InDegPath = path.Join(outDir, "indeg")
	man.OutDegPath = path.Join(outDir, "outdeg")
	if err := e.DFS.WriteFile(man.InDegPath, EncodeUint32s(in)); err != nil {
		return nil, fmt.Errorf("spe: writing in-degrees: %w", err)
	}
	if err := e.DFS.WriteFile(man.OutDegPath, EncodeUint32s(out)); err != nil {
		return nil, fmt.Errorf("spe: writing out-degrees: %w", err)
	}

	manJSON, err := json.Marshal(man)
	if err != nil {
		return nil, fmt.Errorf("spe: encoding manifest: %w", err)
	}
	if err := e.DFS.WriteFile(manifestPath(outDir), manJSON); err != nil {
		return nil, fmt.Errorf("spe: writing manifest: %w", err)
	}
	return man, nil
}

// buildTile assembles the CSR tile for target range [lo,hi) from the mapper
// buckets for tile index t.
func buildTile(id, lo, hi uint32, el *graph.EdgeList, in []uint32, buckets [][][]graph.Edge, t int, fp float64) *csr.Tile {
	tl := &csr.Tile{
		ID:          id,
		TargetLo:    lo,
		TargetHi:    hi,
		NumVertices: el.NumVertices,
		Row:         make([]uint32, hi-lo+1),
	}
	for v := lo; v < hi; v++ {
		tl.Row[v-lo+1] = tl.Row[v-lo] + in[v]
	}
	numEdges := tl.Row[hi-lo]
	tl.Col = make([]uint32, numEdges)
	if el.Weighted {
		tl.Val = make([]float32, numEdges)
	}
	cursor := make([]uint32, hi-lo)
	for m := range buckets {
		for _, edge := range buckets[m][t] {
			local := edge.Dst - lo
			slot := tl.Row[local] + cursor[local]
			cursor[local]++
			tl.Col[slot] = edge.Src
			if tl.Val != nil {
				tl.Val[slot] = edge.W
			}
		}
	}
	if fp > 0 {
		tl.BuildFilter(fp)
	}
	return tl
}

// parallelDegrees is map-reduce jobs 1 and 2: mappers count degrees over
// edge ranges into private arrays, the reduce step sums them.
func (e *Engine) parallelDegrees(el *graph.EdgeList) (in, out []uint32) {
	numMappers := e.Parallelism
	partialIn := make([][]uint32, numMappers)
	partialOut := make([][]uint32, numMappers)
	chunk := (el.NumEdges() + numMappers - 1) / numMappers
	var wg sync.WaitGroup
	for m := 0; m < numMappers; m++ {
		lo := m * chunk
		hi := lo + chunk
		if hi > el.NumEdges() {
			hi = el.NumEdges()
		}
		partialIn[m] = make([]uint32, el.NumVertices)
		partialOut[m] = make([]uint32, el.NumVertices)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(m, lo, hi int) {
			defer wg.Done()
			pin, pout := partialIn[m], partialOut[m]
			for _, edge := range el.Edges[lo:hi] {
				pin[edge.Dst]++
				pout[edge.Src]++
			}
		}(m, lo, hi)
	}
	wg.Wait()
	in = make([]uint32, el.NumVertices)
	out = make([]uint32, el.NumVertices)
	for m := 0; m < numMappers; m++ {
		for v := range in {
			in[v] += partialIn[m][v]
			out[v] += partialOut[m][v]
		}
	}
	return in, out
}

// buildSplitter mirrors tile.Split's boundary rule so SPE output matches the
// in-memory partitioner exactly.
func buildSplitter(in []uint32, s int) []uint32 {
	splitter := []uint32{0}
	size := 0
	for v := 0; v < len(in); v++ {
		size += int(in[v])
		if size >= s && v+1 < len(in) {
			splitter = append(splitter, uint32(v+1))
			size = 0
		}
	}
	return append(splitter, uint32(len(in)))
}

// LoadManifest reads a manifest previously written by Preprocess.
func (e *Engine) LoadManifest(outDir string) (*Manifest, error) {
	data, err := e.DFS.ReadFile(manifestPath(outDir))
	if err != nil {
		return nil, fmt.Errorf("spe: loading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("spe: decoding manifest: %w", err)
	}
	return &m, nil
}

// FetchTile loads and decodes tile i of the manifest from the DFS.
func (e *Engine) FetchTile(m *Manifest, i int) (*csr.Tile, error) {
	if i < 0 || i >= m.NumTiles() {
		return nil, fmt.Errorf("spe: tile index %d out of range [0,%d)", i, m.NumTiles())
	}
	data, err := e.DFS.ReadFile(m.TilePaths[i])
	if err != nil {
		return nil, fmt.Errorf("spe: fetching tile %d: %w", i, err)
	}
	return csr.Decode(data)
}

// FetchDegrees loads the in- and out-degree arrays from the DFS.
func (e *Engine) FetchDegrees(m *Manifest) (in, out []uint32, err error) {
	inData, err := e.DFS.ReadFile(m.InDegPath)
	if err != nil {
		return nil, nil, fmt.Errorf("spe: fetching in-degrees: %w", err)
	}
	outData, err := e.DFS.ReadFile(m.OutDegPath)
	if err != nil {
		return nil, nil, fmt.Errorf("spe: fetching out-degrees: %w", err)
	}
	if in, err = DecodeUint32s(inData); err != nil {
		return nil, nil, fmt.Errorf("spe: decoding in-degrees: %w", err)
	}
	if out, err = DecodeUint32s(outData); err != nil {
		return nil, nil, fmt.Errorf("spe: decoding out-degrees: %w", err)
	}
	return in, out, nil
}

// EncodeUint32s serializes a uint32 array as little-endian with a length
// prefix; the format of the persisted degree arrays.
func EncodeUint32s(vals []uint32) []byte {
	out := make([]byte, 4+4*len(vals))
	binary.LittleEndian.PutUint32(out, uint32(len(vals)))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4+4*i:], v)
	}
	return out
}

// DecodeUint32s parses EncodeUint32s output.
func DecodeUint32s(data []byte) ([]uint32, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("spe: uint32 array too short")
	}
	n := binary.LittleEndian.Uint32(data)
	if uint64(len(data)) != 4+4*uint64(n) {
		return nil, fmt.Errorf("spe: uint32 array length %d, header says %d entries", len(data), n)
	}
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint32(data[4+4*i:])
	}
	return vals, nil
}
