// Command graphh-bench regenerates the paper's evaluation artifacts: every
// table (I–V) and figure (1, 6, 7, 8, 9, 10) plus the DESIGN.md ablations,
// on the simulated substrates with scaled-down dataset analogues.
//
// Usage:
//
//	graphh-bench -list
//	graphh-bench -exp f9
//	graphh-bench -exp f7b       # cache-capacity sweep per eviction policy
//	graphh-bench -exp all -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (t1..t5, f1a..f10, a1..a5) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.Float64("scale", 0, "dataset scale override (default GRAPHH_SCALE or 1)")
		servers = flag.Int("servers", 0, "reference cluster size override (default 9)")
		steps   = flag.Int("supersteps", 0, "PageRank superstep budget override (default 6)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	ctx := bench.NewContext()
	if *scale > 0 {
		ctx.Scale = *scale
	}
	if *servers > 0 {
		ctx.Servers = *servers
	}
	if *steps > 0 {
		ctx.Supersteps = *steps
	}

	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "graphh-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, err := bench.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphh-bench:", err)
		os.Exit(1)
	}
	run(e)
}
