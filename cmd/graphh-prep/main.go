// Command graphh-prep runs GraphH's pre-processing engine (SPE, §III-B) on
// a raw edge list: it computes degree arrays, splits the graph into
// equal-edge-count CSR tiles, and persists tiles + manifest into a local
// DFS instance (a directory tree standing in for HDFS/Lustre). The output
// is reusable input for graphh run across many applications.
//
// Usage:
//
//	graphh-prep -in twitter.bin -dfs /tmp/ghdfs -out graphs/twitter -tile-size 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/dfs"
	"repro/internal/spe"
	"repro/internal/tile"
)

func main() {
	var (
		in       = flag.String("in", "", "input edge list (.csv/.txt = text, else binary)")
		dfsRoot  = flag.String("dfs", "", "DFS root directory (created if missing)")
		out      = flag.String("out", "", "output path inside the DFS")
		tileSize = flag.Int("tile-size", 0, "edges per tile S (0 = auto)")
		nodes    = flag.Int("dfs-nodes", 3, "simulated DFS datanode count")
		repl     = flag.Int("replication", 2, "DFS block replication factor")
		par      = flag.Int("parallelism", runtime.GOMAXPROCS(0), "pre-processing worker count")
	)
	flag.Parse()
	if *in == "" || *dfsRoot == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "graphh-prep: -in, -dfs and -out are required")
		flag.Usage()
		os.Exit(2)
	}

	dirs := make([]string, *nodes)
	for i := range dirs {
		dirs[i] = filepath.Join(*dfsRoot, fmt.Sprintf("datanode-%d", i))
	}
	d, err := dfs.New(dirs, dfs.Config{Replication: *repl})
	if err != nil {
		fail(err)
	}
	eng := spe.New(d, *par)

	raw, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	rawPath := "raw/" + filepath.Base(*in)
	if err := d.WriteFile(rawPath, raw); err != nil {
		fail(err)
	}

	man, err := eng.Preprocess(rawPath, *out, tile.Options{TileSize: *tileSize})
	if err != nil {
		fail(err)
	}
	fmt.Printf("pre-processed %q: |V|=%d |E|=%d weighted=%v\n",
		man.Name, man.NumVertices, man.NumEdges, man.Weighted)
	fmt.Printf("tiles: %d (target size %d edges), total %d bytes on DFS\n",
		man.NumTiles(), man.TileSize, man.TotalTileBytes())
	fmt.Printf("manifest: %s\n", *out+"/manifest.json")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphh-prep:", err)
	os.Exit(1)
}
