// Command graphh-gen generates the synthetic benchmark graphs used by this
// reproduction — the scaled-down analogues of Table I ("twitter-sim",
// "uk2007-sim", "uk2014-sim", "eu2015-sim") or custom R-MAT graphs — and
// writes them as CSV or binary edge lists.
//
// Usage:
//
//	graphh-gen -dataset uk2007-sim -scale 0.5 -o uk2007.bin
//	graphh-gen -vertices 100000 -edges 2000000 -seed 7 -format csv -o custom.csv
//	graphh-gen -list
package main

import (
	"flag"
	"fmt"
	"os"

	graphh "repro"
	"repro/internal/graph"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "named benchmark dataset (see -list)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		vertices = flag.Uint("vertices", 0, "custom R-MAT: vertex count")
		edges    = flag.Int("edges", 0, "custom R-MAT: edge count")
		seed     = flag.Uint64("seed", 1, "custom R-MAT: random seed")
		weighted = flag.Bool("weighted", false, "attach deterministic edge weights")
		format   = flag.String("format", "bin", "output format: bin or csv")
		out      = flag.String("o", "", "output file (default stdout)")
		list     = flag.Bool("list", false, "list named datasets and exit")
		stats    = flag.Bool("stats", false, "print Table I-style statistics to stderr")
	)
	flag.Parse()

	if *list {
		fmt.Println("dataset      paper graph   |V|(sim)  |E|(sim)  avg-degree")
		for _, d := range graph.BenchmarkDatasets {
			fmt.Printf("%-12s %-13s %8d  %8d  %.1f\n", d.Name, d.PaperName,
				d.SimVertices, d.SimEdges, float64(d.SimEdges)/float64(d.SimVertices))
		}
		return
	}

	var g *graphh.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = graphh.Generate(*dataset, *scale)
	case *vertices > 0 && *edges > 0:
		g = graphh.GenerateRMAT(uint32(*vertices), *edges, *seed)
		g.Name = fmt.Sprintf("rmat-%d-%d", *vertices, *edges)
	default:
		fmt.Fprintln(os.Stderr, "graphh-gen: need -dataset or -vertices/-edges")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphh-gen:", err)
		os.Exit(1)
	}
	if *weighted {
		g = graph.AttachWeights(g, 10, *seed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphh-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		err = g.WriteCSV(w)
	case "bin":
		err = g.WriteBinary(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphh-gen:", err)
		os.Exit(1)
	}
	if *stats {
		s := g.ComputeStats()
		fmt.Fprintf(os.Stderr, "%s: |V|=%d |E|=%d avg-deg=%.1f max-in=%d max-out=%d csv-size=%dB\n",
			s.Name, s.NumVertices, s.NumEdges, s.AvgDegree, s.MaxInDeg, s.MaxOutDeg, s.CSVBytes)
	}
}
