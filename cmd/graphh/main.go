// Command graphh runs vertex-centric applications on a graph with the
// GraphH engine: two-stage tile partitioning, the GAB computation model on
// a simulated N-server cluster, edge caching and hybrid communication.
//
// Usage:
//
//	graphh -app pagerank -in web.bin -servers 4 -supersteps 20
//	graphh -app sssp -source 0 -in roads.csv -servers 2
//	graphh -app wcc -in social.bin -symmetrize
//	graphh -program pagerank,sssp,wcc -in social.bin -symmetrize -servers 4
//
// -program takes a comma-separated list and runs every job over one
// persistent session: the graph is partitioned and persisted once, and
// each job after the first starts with a warm edge cache — the per-job
// wall times printed make the reuse visible. With -concurrent-jobs N > 1
// the session is multi-tenant and the listed jobs are submitted together:
//
//	graphh -program pagerank,wcc -in social.bin -symmetrize -concurrent-jobs 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	graphh "repro"
	"repro/api"
)

func main() {
	var (
		app        = flag.String("app", "pagerank", "application: pagerank, sssp, bfs, wcc")
		programs   = flag.String("program", "", "comma-separated application list run over one session (overrides -app), e.g. pagerank,sssp,wcc")
		in         = flag.String("in", "", "input edge list (.csv/.txt = text, else binary)")
		dataset    = flag.String("dataset", "", "generate a named dataset instead of reading -in")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		servers    = flag.Int("servers", 1, "simulated cluster size N")
		workers    = flag.Int("workers", 0, "workers per server T (0 = auto)")
		steps      = flag.Int("supersteps", 50, "maximum supersteps")
		source     = flag.Uint("source", 0, "source vertex for sssp/bfs")
		tileSize   = flag.Int("tile-size", 0, "edges per tile S (0 = auto)")
		cacheCap   = flag.Int64("cache-bytes", 0, "edge cache capacity per server (0 = unlimited, <0 disabled)")
		cacheMode  = flag.String("cache-mode", "auto", "cache codec: auto, raw, snappy, zlib-1, zlib-3")
		cachePol   = flag.String("cache-policy", "auto", "cache eviction: auto, admit-no-evict, lru, clock")
		msgCodec   = flag.String("msg-codec", "snappy", "message codec: raw, snappy, zlib-1, zlib-3")
		tcp        = flag.Bool("tcp", false, "use the TCP loopback transport")
		symmetrize = flag.Bool("symmetrize", false, "add reverse edges before running (needed by wcc)")
		top        = flag.Int("top", 10, "print the top-K vertices by value")
		diskBW     = flag.Int64("disk-bw", 0, "disk bandwidth model, bytes/s (0 = unthrottled)")
		diskLat    = flag.Duration("disk-latency", 0, "disk per-read-op latency model, e.g. 2ms (0 = pure bandwidth)")
		netBW      = flag.Int64("net-bw", 0, "network bandwidth model, bytes/s (0 = unlimited)")
		prefetch   = flag.Int("prefetch-depth", 0, "sweep-ahead tile prefetch window (0 = auto from the miss ratio, <0 = off)")
		residency  = flag.String("residency", "auto", "tile residency tier: auto, cached, streaming")
		rebalance  = flag.Bool("rebalance", true, "migrate tiles off straggling servers between supersteps")
		rebalRatio = flag.Float64("rebalance-ratio", 0, "straggler trigger: server step cost over ratio x cluster mean (0 = 1.3)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "checkpoint the vertex state every K supersteps for crash recovery (0 = off)")
		failTO     = flag.Duration("failure-timeout", 0, "declare a server dead after its traffic stalls this long, e.g. 2s (0 = only self-declared crashes)")
		concJobs   = flag.Int("concurrent-jobs", 1, "run the -program jobs concurrently, up to N in flight (multi-tenant session; <=1 = back-to-back)")
		jsonOut    = flag.Bool("json", false, "emit one api.RunReport JSON document per job instead of the human report — the same schema a graphhd daemon serves")
	)
	flag.Parse()

	g, err := loadGraph(*in, *dataset, *scale)
	if err != nil {
		fail(err)
	}
	if *symmetrize {
		g = g.Symmetrize()
	}

	list := *programs
	if list == "" {
		list = *app
	}
	var names []string
	var progs []graphh.Program
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var prog graphh.Program
		switch name {
		case "pagerank":
			prog = graphh.NewPageRank()
		case "sssp":
			prog = graphh.NewSSSP(uint32(*source))
		case "bfs":
			prog = graphh.NewBFS(uint32(*source))
		case "wcc":
			prog = graphh.NewWCC()
		default:
			fail(fmt.Errorf("unknown app %q", name))
		}
		names = append(names, name)
		progs = append(progs, prog)
	}
	if len(progs) == 0 {
		fail(fmt.Errorf("no application named in -program/-app"))
	}

	p, err := graphh.Partition(g, graphh.PartitionOptions{TileSize: *tileSize})
	if err != nil {
		fail(err)
	}
	opts := graphh.Options{
		Servers:            *servers,
		Workers:            *workers,
		MaxSupersteps:      *steps,
		CacheCapacity:      *cacheCap,
		DiskReadBandwidth:  *diskBW,
		DiskWriteBandwidth: *diskBW,
		DiskReadLatency:    *diskLat,
		NetBandwidth:       *netBW,
		PrefetchDepth:      *prefetch,
		DisableRebalance:   !*rebalance,
		RebalanceRatio:     *rebalRatio,
		CheckpointEvery:    *ckptEvery,
		FailureTimeout:     *failTO,
		MaxConcurrentJobs:  *concJobs,
	}
	if *tcp {
		opts.Transport = graphh.TransportTCP
	}
	if *cacheMode != "auto" {
		m, err := parseCodec(*cacheMode)
		if err != nil {
			fail(err)
		}
		opts.CacheMode = &m
	}
	if *cachePol != "auto" {
		p, err := graphh.CachePolicyByName(*cachePol)
		if err != nil {
			fail(err)
		}
		opts.CachePolicy = &p
	}
	if r, err := graphh.ResidencyByName(*residency); err != nil {
		fail(err)
	} else {
		opts.Residency = r
	}
	mc, err := parseCodec(*msgCodec)
	if err != nil {
		fail(err)
	}
	opts.MessageCodec = &mc

	sess, err := graphh.Open(p, opts)
	if err != nil {
		fail(err)
	}
	defer sess.Close()

	if !*jsonOut {
		fmt.Printf("%s on %s: |V|=%d |E|=%d tiles=%d servers=%d\n",
			strings.Join(names, ","), g.Name, g.NumVertices, g.NumEdges(), p.NumTiles(), *servers)
	}
	if *concJobs > 1 {
		// Multi-tenant: every job is submitted at once; the session admits
		// up to -concurrent-jobs of them and interleaves their supersteps,
		// sharing tile loads between jobs sweeping the same data.
		results := make([]*graphh.Result, len(progs))
		errs := make([]error, len(progs))
		var wg sync.WaitGroup
		start := time.Now()
		for i, prog := range progs {
			wg.Add(1)
			go func(i int, prog graphh.Program) {
				defer wg.Done()
				results[i], errs[i] = sess.Submit(context.Background(), prog, graphh.RunOptions{})
			}(i, prog)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				// fail exits the process, skipping the deferred Close; close
				// here so the session's scratch tile store is removed.
				sess.Close()
				fail(err)
			}
		}
		var shared int64
		for _, res := range results {
			for _, sv := range res.Servers {
				shared += sv.SharedTileLoads
			}
		}
		if *jsonOut {
			for i, res := range results {
				printJSON(names[i], res)
			}
			return
		}
		fmt.Printf("%d jobs ran concurrently (up to %d in flight) in %v wall; %d tile loads shared between jobs\n",
			len(progs), *concJobs, wall.Round(1e6), shared)
		for i, res := range results {
			fmt.Printf("job %d/%d %s:\n", i+1, len(progs), names[i])
			printJob(names[i], res, i == 0, *top)
		}
		return
	}
	for i, prog := range progs {
		res, err := sess.Submit(context.Background(), prog, graphh.RunOptions{})
		if err != nil {
			// fail exits the process, skipping the deferred Close; close
			// here so the session's scratch tile store is removed.
			sess.Close()
			fail(err)
		}
		if *jsonOut {
			printJSON(names[i], res)
			continue
		}
		if len(progs) > 1 {
			fmt.Printf("job %d/%d %s:\n", i+1, len(progs), names[i])
		}
		printJob(names[i], res, i == 0, *top)
	}
}

// printJSON emits the job's api.RunReport — the exact document a graphhd
// daemon serves at GET /v1/jobs/{id} for the same run, so local and remote
// front-ends are scriptable with one schema.
func printJSON(name string, res *graphh.Result) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(api.ReportFromResult(name, res)); err != nil {
		fail(err)
	}
}

// printJob reports one job's outcome. Setup is printed only for the first
// job — later jobs reuse the session's persisted tiles and warm cache, and
// their loop wall time is the whole cost.
func printJob(name string, res *graphh.Result, first bool, top int) {
	if first {
		fmt.Printf("supersteps: %d (converged=%v), setup %v, loop %v, avg step %v\n",
			res.Supersteps, res.Converged, res.SetupDuration.Round(1e6),
			res.Duration.Round(1e6), res.AvgStepDuration().Round(1e5))
	} else {
		fmt.Printf("supersteps: %d (converged=%v), loop %v (warm session), avg step %v\n",
			res.Supersteps, res.Converged,
			res.Duration.Round(1e6), res.AvgStepDuration().Round(1e5))
	}
	fmt.Printf("network: %.2f MB total; peak server memory: %.2f MB\n",
		float64(res.TotalWireBytes())/1e6, float64(res.PeakMemoryBytes())/1e6)
	var migrated int
	var migratedMB float64
	for _, st := range res.Steps {
		migrated += st.MigratedTiles
		migratedMB += float64(st.MigrationBytes) / 1e6
	}
	if migrated > 0 {
		fmt.Printf("rebalancer: migrated %d tiles (%.2f MB) mid-run\n", migrated, migratedMB)
	}
	var ckpts, recoveries int
	var ckptMB float64
	for _, sv := range res.Servers {
		ckpts += sv.Checkpoints
		recoveries += sv.Recoveries
		ckptMB += float64(sv.CheckpointBytes) / 1e6
	}
	if ckpts > 0 {
		fmt.Printf("checkpoints: %d written (%.2f MB)\n", ckpts, ckptMB)
	}
	if len(res.DeadServers) > 0 {
		fmt.Printf("recovery: servers %v died mid-run; survivors completed %d recovery rounds\n",
			res.DeadServers, recoveries)
	}
	var joins int
	var membershipEpoch uint64
	for _, sv := range res.Servers {
		joins += sv.Joins
		if sv.MembershipEpoch > membershipEpoch {
			membershipEpoch = sv.MembershipEpoch
		}
	}
	if joins > 0 {
		fmt.Printf("membership: %d rejoin(s) admitted mid-run; epoch %d at job end\n",
			joins, membershipEpoch)
	}
	var pfIssued, pfHits, pfWasted, queueHW int64
	for _, sv := range res.Servers {
		pfIssued += sv.PrefetchIssued
		pfHits += sv.PrefetchHits
		pfWasted += sv.PrefetchWasted
		if sv.Disk.QueueHighWater > queueHW {
			queueHW = sv.Disk.QueueHighWater
		}
	}
	if pfIssued > 0 {
		fmt.Printf("prefetch: %d tiles staged, %d claimed, %d wasted; disk queue depth peaked at %d\n",
			pfIssued, pfHits, pfWasted, queueHW)
	}
	for _, sv := range res.Servers {
		fmt.Printf("  server %d: mem %.2f MB, disk read %.2f MB, cache hit %.1f%% (%s/%s, %s tiles)\n",
			sv.Server, float64(sv.MemoryBytes)/1e6,
			float64(sv.Disk.ReadBytes)/1e6, sv.Cache.HitRatio()*100,
			sv.CacheMode, sv.CachePolicy, sv.Residency)
	}

	type kv struct {
		v   uint32
		val float64
	}
	ranked := make([]kv, 0, len(res.Values))
	for v, val := range res.Values {
		ranked = append(ranked, kv{uint32(v), val})
	}
	descending := name == "pagerank"
	sort.Slice(ranked, func(i, j int) bool {
		if descending {
			return ranked[i].val > ranked[j].val
		}
		return ranked[i].val < ranked[j].val
	})
	k := top
	if k > len(ranked) {
		k = len(ranked)
	}
	fmt.Printf("top %d vertices:\n", k)
	for i := 0; i < k; i++ {
		fmt.Printf("  v%-8d %g\n", ranked[i].v, ranked[i].val)
	}
}

func loadGraph(in, dataset string, scale float64) (*graphh.Graph, error) {
	if dataset != "" {
		return graphh.Generate(dataset, scale)
	}
	if in == "" {
		return nil, fmt.Errorf("need -in or -dataset")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if len(in) > 4 && (in[len(in)-4:] == ".csv" || in[len(in)-4:] == ".txt") {
		return graphh.LoadCSV(f, in)
	}
	return graphh.LoadBinary(f, in)
}

func parseCodec(name string) (graphh.Codec, error) {
	m, err := codecByName(name)
	if err != nil {
		return graphh.CodecNone, err
	}
	return m, nil
}

func codecByName(name string) (graphh.Codec, error) {
	switch name {
	case "raw", "none":
		return graphh.CodecNone, nil
	case "snappy":
		return graphh.CodecSnappy, nil
	case "zlib-1":
		return graphh.CodecZlib1, nil
	case "zlib-3":
		return graphh.CodecZlib3, nil
	default:
		return graphh.CodecNone, fmt.Errorf("unknown codec %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphh:", err)
	os.Exit(1)
}
