// Command graphhd serves a long-lived GraphH session to remote clients over
// HTTP. It loads (or generates) a graph, partitions it once, opens one
// session, and serves the repro/api JSON surface until SIGINT/SIGTERM —
// which triggers a graceful drain: running jobs finish (up to
// -drain-timeout, then they are canceled at a superstep edge), new
// submissions get 503, and the session closes before exit.
//
// Usage:
//
//	graphhd -listen 127.0.0.1:8480 -in web.bin -servers 4 -concurrent-jobs 2
//	curl -X POST localhost:8480/v1/jobs -d '{"program":{"name":"pagerank"}}'
//	curl localhost:8480/v1/jobs/j1/progress        # NDJSON, one line per superstep
//	curl 'localhost:8480/v1/jobs/j1/result?offset=0&limit=5'
//
// The readiness line printed on stdout ("graphhd: serving ...") is part of
// the interface: the smoke test and scripts wait for it before connecting.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	graphh "repro"
	"repro/internal/service"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8480", "HTTP listen address")
		in         = flag.String("in", "", "input edge list (.csv/.txt = text, else binary)")
		dataset    = flag.String("dataset", "", "generate a named dataset instead of reading -in")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		servers    = flag.Int("servers", 1, "simulated cluster size N")
		workers    = flag.Int("workers", 0, "workers per server T (0 = auto)")
		steps      = flag.Int("supersteps", 50, "default maximum supersteps per job")
		tileSize   = flag.Int("tile-size", 0, "edges per tile S (0 = auto)")
		cacheCap   = flag.Int64("cache-bytes", 0, "edge cache capacity per server (0 = unlimited, <0 disabled)")
		cacheMode  = flag.String("cache-mode", "auto", "cache codec: auto, raw, snappy, zlib-1, zlib-3")
		cachePol   = flag.String("cache-policy", "auto", "cache eviction: auto, admit-no-evict, lru, clock")
		msgCodec   = flag.String("msg-codec", "snappy", "default message codec: raw, snappy, zlib-1, zlib-3")
		tcp        = flag.Bool("tcp", false, "use the TCP loopback transport between simulated servers")
		symmetrize = flag.Bool("symmetrize", false, "add reverse edges before serving (needed by wcc)")
		diskBW     = flag.Int64("disk-bw", 0, "disk bandwidth model, bytes/s (0 = unthrottled)")
		diskLat    = flag.Duration("disk-latency", 0, "disk per-read-op latency model (0 = pure bandwidth)")
		netBW      = flag.Int64("net-bw", 0, "network bandwidth model, bytes/s (0 = unlimited)")
		prefetch   = flag.Int("prefetch-depth", 0, "sweep-ahead tile prefetch window (0 = auto, <0 = off)")
		residency  = flag.String("residency", "auto", "tile residency tier: auto, cached, streaming")
		rebalance  = flag.Bool("rebalance", true, "migrate tiles off straggling servers between supersteps")
		ckptEvery  = flag.Int("checkpoint-every", 0, "checkpoint the vertex state every K supersteps (0 = off)")
		failTO     = flag.Duration("failure-timeout", 0, "declare a server dead after its traffic stalls this long (0 = off)")
		concJobs   = flag.Int("concurrent-jobs", 2, "jobs the session runs concurrently (1 = serial)")
		queueJobs  = flag.Int("max-queued-jobs", 0, "jobs allowed to wait beyond the concurrency level (0 = library default)")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM, let running jobs finish this long before canceling them")
		debug      = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	g, err := loadGraph(*in, *dataset, *scale)
	if err != nil {
		fail(err)
	}
	if *symmetrize {
		g = g.Symmetrize()
	}
	p, err := graphh.Partition(g, graphh.PartitionOptions{TileSize: *tileSize})
	if err != nil {
		fail(err)
	}
	opts := graphh.Options{
		Servers:            *servers,
		Workers:            *workers,
		MaxSupersteps:      *steps,
		CacheCapacity:      *cacheCap,
		DiskReadBandwidth:  *diskBW,
		DiskWriteBandwidth: *diskBW,
		DiskReadLatency:    *diskLat,
		NetBandwidth:       *netBW,
		PrefetchDepth:      *prefetch,
		DisableRebalance:   !*rebalance,
		CheckpointEvery:    *ckptEvery,
		FailureTimeout:     *failTO,
		MaxConcurrentJobs:  *concJobs,
		MaxQueuedJobs:      *queueJobs,
	}
	if *tcp {
		opts.Transport = graphh.TransportTCP
	}
	if *cacheMode != "auto" {
		m, err := graphh.CodecByName(*cacheMode)
		if err != nil {
			fail(err)
		}
		opts.CacheMode = &m
	}
	if *cachePol != "auto" {
		pol, err := graphh.CachePolicyByName(*cachePol)
		if err != nil {
			fail(err)
		}
		opts.CachePolicy = &pol
	}
	if r, err := graphh.ResidencyByName(*residency); err != nil {
		fail(err)
	} else {
		opts.Residency = r
	}
	mc, err := graphh.CodecByName(*msgCodec)
	if err != nil {
		fail(err)
	}
	opts.MessageCodec = &mc

	sess, err := graphh.Open(p, opts)
	if err != nil {
		fail(err)
	}
	svc := service.New(sess, service.Config{
		NumVertices:       int(g.NumVertices),
		NumTiles:          p.NumTiles(),
		Servers:           *servers,
		MaxConcurrentJobs: *concJobs,
		Debug:             *debug,
	})
	expvar.Publish("graphhd", svc.Vars())

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: svc.Handler()}

	// Readiness line: the actual bound address (important with :0 ports),
	// printed only once the listener exists. Scripts parse this.
	fmt.Printf("graphhd: serving %s |V|=%d |E|=%d tiles=%d servers=%d concurrent-jobs=%d on http://%s\n",
		g.Name, g.NumVertices, g.NumEdges(), p.NumTiles(), *servers, *concJobs, ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("graphhd: %v: draining (timeout %v)\n", s, *drainTO)
	case err := <-serveErr:
		fail(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "graphhd: drain:", err)
	}
	if err := hs.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "graphhd: shutdown:", err)
	}
	<-serveErr // Serve has returned ErrServerClosed
	fmt.Println("graphhd: drained, session closed")
}

func loadGraph(in, dataset string, scale float64) (*graphh.Graph, error) {
	if dataset != "" {
		return graphh.Generate(dataset, scale)
	}
	if in == "" {
		return nil, fmt.Errorf("need -in or -dataset")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(in, ".csv") || strings.HasSuffix(in, ".txt") {
		return graphh.LoadCSV(f, in)
	}
	return graphh.LoadBinary(f, in)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphhd:", err)
	os.Exit(1)
}
