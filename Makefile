# Tier-1 verification and development targets. `make ci` is the one-command
# tier-1 gate (build, vet, full test suite); `make check` is the default
# developer gate: ci plus a race-detector pass over the concurrency-heavy
# packages and a short-budget fuzz run.

GO ?= go

.PHONY: all build test vet bench bench-codec fuzz fuzz-ci race ci check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# ci is the tier-1 verify: everything must build, vet clean and pass.
ci: build vet test

# race runs the cluster and core suites — the packages with real
# cross-goroutine traffic (pipelined sender, receive loop, worker pools) —
# under the race detector.
race:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/core/

# check is the default gate: tier-1 plus race and a short fuzz budget.
check: ci race fuzz-ci

# bench runs the experiment-harness benchmarks plus the end-to-end PageRank
# hot-path benchmark (see PERF.md).
bench:
	$(GO) test . -run xxx -bench . -benchmem

# bench-codec tracks the serialization hot paths against the per-word
# reference implementation (the PERF.md table).
bench-codec:
	$(GO) test ./internal/csr/ -run xxx -bench 'TileDecode|TileEncode|TileAppend|BuildFilter' -benchmem
	$(GO) test ./internal/comm/ -run xxx -bench 'Encode|DecodeInto' -benchmem

# fuzz gives the tile-codec fuzzer a short budget; raise -fuzztime at will.
fuzz:
	$(GO) test ./internal/csr/ -run xxx -fuzz FuzzDecode -fuzztime 30s

# fuzz-ci runs every fuzz target with a CI-sized budget.
fuzz-ci:
	$(GO) test ./internal/csr/ -run xxx -fuzz FuzzDecode -fuzztime 10s
	$(GO) test ./internal/comm/ -run xxx -fuzz FuzzDecodeInto -fuzztime 10s
