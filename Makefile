# Tier-1 verification and development targets. `make ci` is the one-command
# gate: build, vet, then the full test suite.

GO ?= go

.PHONY: all build test vet bench bench-codec fuzz ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# ci is the tier-1 verify: everything must build, vet clean and pass.
ci: build vet test

# bench runs the experiment-harness benchmarks plus the end-to-end PageRank
# hot-path benchmark (see PERF.md).
bench:
	$(GO) test . -run xxx -bench . -benchmem

# bench-codec tracks the serialization hot paths against the per-word
# reference implementation (the PERF.md table).
bench-codec:
	$(GO) test ./internal/csr/ -run xxx -bench 'TileDecode|TileEncode|TileAppend|BuildFilter' -benchmem
	$(GO) test ./internal/comm/ -run xxx -bench 'Encode|DecodeInto' -benchmem

# fuzz gives the tile-codec fuzzer a short budget; raise -fuzztime at will.
fuzz:
	$(GO) test ./internal/csr/ -run xxx -fuzz FuzzDecode -fuzztime 30s
