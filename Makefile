# Tier-1 verification and development targets. `make ci` is the one-command
# tier-1 gate (build, vet, full test suite); `make check` is the default
# developer gate: ci plus a race-detector pass over the concurrency-heavy
# packages and a short-budget fuzz run.

GO ?= go

.PHONY: all build test vet bench bench-codec bench-smoke chaos fuzz fuzz-ci race ci check docs-check api-check api-snapshot smoke-daemon

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# ci is the tier-1 verify: everything must build, vet clean and pass.
ci: build vet test

# race runs the cluster, core, disk and cache suites — the packages with
# real cross-goroutine traffic (pipelined sender, receive loop, worker
# pools, the sweep-ahead prefetcher, the async batched reader, and the
# multi-tenant session: concurrent Submits, the admission controller, the
# share window and the per-job frame router; the concurrent-stress test
# raises GOMAXPROCS to at least 4 itself) — under the race detector.
race:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/core/ ./internal/disk/ ./internal/cache/

# check is the default gate: tier-1 plus race, the chaos suite, a short
# fuzz budget, the documentation and API gates, the perf smoke pass and the
# daemon smoke test.
check: ci race chaos fuzz-ci docs-check api-check bench-smoke smoke-daemon

# smoke-daemon builds the real graphhd binary, serves a generated dataset on
# a loopback port, submits PageRank through the typed Go client, asserts the
# paginated remote result is bit-identical to the in-process Run, and checks
# SIGTERM drains gracefully (exit 0, session closed). The service package's
# own e2e suite runs under the race detector as well.
smoke-daemon:
	$(GO) test . -run TestDaemonSmoke -count=1
	$(GO) test -race -count=1 ./internal/service/

# chaos runs the fault-injection and crash-recovery suite under the race
# detector: the crash-at-every-superstep sweep (serial and with two
# concurrent jobs in flight), the kill-then-rejoin elastic-membership
# sweep, hang detection, wire drop/duplicate tolerance, session death
# semantics and the disk failure hooks. Every test asserts recovered
# results are bit-identical to the fault-free run.
chaos:
	$(GO) test -race -count=1 \
		-run 'Recovery|Fault|Wire|Kill|Checkpoint|SessionRecovers|SessionDead|AllServersDie|Rejoin|JoinBetweenJobs|JoinValidation|JobBarrierNoLeak' \
		./internal/core/ ./internal/disk/ .

# bench-smoke is the fast perf sanity pass: the skewed-partition
# rebalancing experiment at a tiny scale (exercises migration end to end
# and checks bit-identical results), the smallest point of the out-of-core
# sweep (prefetch off vs on at a 25% cache budget), the two-job
# multi-tenant session vs back-to-back (checks bit-identity and that the
# shared sweep beats serial), plus the allocation guards on the pipelined
# send, receive and prefetch-hit paths.
bench-smoke:
	GRAPHH_BENCH_SCALE=0.05 $(GO) run ./cmd/graphh-bench -exp skew -supersteps 8
	GRAPHH_BENCH_SCALE=0.05 GRAPHH_OOC_BUDGETS=25 $(GO) run ./cmd/graphh-bench -exp ooc -supersteps 6
	GRAPHH_BENCH_SCALE=0.05 $(GO) run ./cmd/graphh-bench -exp multijob -supersteps 8
	$(GO) test ./internal/cluster/ -run TestRecvSteadyStateAllocs -count=1
	$(GO) test ./internal/core/ -run 'TestProcessTileSteadyStateAllocs|TestPrefetchSteadyStateAllocs' -count=1
	$(GO) test ./internal/core/ -run xxx -bench BenchmarkRecovery4Servers -benchtime 1x -count=1

# api-check surfaces accidental public-API breaks: the root package's
# `go doc -all` output must match the committed snapshot in docs/API.txt.
# After an intentional API change, run `make api-snapshot` and commit the
# refreshed file (the diff doubles as the API-review artifact).
api-check:
	@$(GO) doc -all . | diff -u docs/API.txt - \
		|| { echo "public API drifted from docs/API.txt;"; \
		     echo "run 'make api-snapshot' if the change is intentional"; exit 1; }

api-snapshot:
	$(GO) doc -all . > docs/API.txt

# docs-check keeps the documentation honest: every example and command must
# compile, gofmt must be clean repo-wide, and every `make <target>` command
# quoted in README.md must exist as a target in this Makefile.
docs-check:
	$(GO) build ./examples/... ./cmd/...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@missing=0; \
	for t in $$(awk '/^```/{in_code=!in_code;next} in_code' README.md | \
		grep -ohE '(^|[ \t])make [a-z][a-z0-9-]*' | sed 's/.*make //' | sort -u); do \
		grep -qE "^$$t:" Makefile || { echo "README references missing make target: $$t"; missing=1; }; \
	done; \
	[ "$$missing" -eq 0 ]

# bench runs the experiment-harness benchmarks plus the end-to-end PageRank
# hot-path benchmark (see PERF.md).
bench:
	$(GO) test . -run xxx -bench . -benchmem

# bench-codec tracks the serialization hot paths against the per-word
# reference implementation (the PERF.md table).
bench-codec:
	$(GO) test ./internal/csr/ -run xxx -bench 'TileDecode|TileEncode|TileAppend|BuildFilter' -benchmem
	$(GO) test ./internal/comm/ -run xxx -bench 'Encode|DecodeInto' -benchmem

# fuzz gives the tile-codec fuzzer a short budget; raise -fuzztime at will.
fuzz:
	$(GO) test ./internal/csr/ -run xxx -fuzz FuzzDecode -fuzztime 30s

# fuzz-ci runs every fuzz target with a CI-sized budget.
fuzz-ci:
	$(GO) test ./internal/csr/ -run xxx -fuzz FuzzDecode -fuzztime 10s
	$(GO) test ./internal/comm/ -run xxx -fuzz FuzzDecodeInto -fuzztime 10s
	$(GO) test ./internal/comm/ -run xxx -fuzz FuzzDecodeJobFrame -fuzztime 10s
	$(GO) test ./internal/core/ -run xxx -fuzz FuzzDecodeRebalance -fuzztime 10s
	$(GO) test ./internal/core/ -run xxx -fuzz FuzzDecodeJoinFrame -fuzztime 10s
	$(GO) test ./internal/disk/ -run xxx -fuzz FuzzDecodeBatchFrame -fuzztime 10s
	$(GO) test ./api/ -run xxx -fuzz FuzzDecodeJobRequest -fuzztime 10s
